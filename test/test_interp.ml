(* Tests for the functional DFG interpreter and the semantic equivalence of
   graph transformations. *)

open Helpers

let test_op_semantics () =
  (* v2 = v0 + v1 via a join *)
  let g = graph ~ops:[| "add"; "add"; "add" |] 3 [ (0, 2); (1, 2) ] in
  let input v i = if v = 0 then i else 10 * i in
  let out = Dfg.Interp.run g ~iterations:4 ~input in
  Alcotest.(check (array int)) "sum stream" [| 0; 11; 22; 33 |] out.(2);
  let g = graph ~ops:[| "add"; "add"; "sub" |] 3 [ (0, 2); (1, 2) ] in
  let out = Dfg.Interp.run g ~iterations:3 ~input in
  Alcotest.(check (array int)) "difference" [| 0; -9; -18 |] out.(2);
  let g = graph ~ops:[| "add"; "add"; "mul" |] 3 [ (0, 2); (1, 2) ] in
  let out = Dfg.Interp.run g ~iterations:3 ~input in
  Alcotest.(check (array int)) "product" [| 0; 10; 40 |] out.(2);
  let g = graph ~ops:[| "add"; "add"; "comp" |] 3 [ (0, 2); (1, 2) ] in
  let out = Dfg.Interp.run g ~iterations:3 ~input in
  Alcotest.(check (array int)) "comparison" [| 0; 1; 1 |] out.(2)

let test_delays_read_past_iterations () =
  (* accumulator: v1 = v0 + v1[previous]; classic running sum *)
  let g =
    graph_with_delays ~ops:[| "add"; "add" |] 2 [ (0, 1, 0); (1, 1, 1) ]
  in
  let out = Dfg.Interp.run g ~iterations:5 ~input:(fun _ i -> i + 1) in
  Alcotest.(check (array int)) "running sum" [| 1; 3; 6; 10; 15 |] out.(1)

let test_initial_values_are_zero () =
  (* v1 reads v0 two iterations back *)
  let g = graph_with_delays ~ops:[| "add"; "add" |] 2 [ (0, 1, 2) ] in
  let out = Dfg.Interp.run g ~iterations:4 ~input:(fun _ i -> i + 7) in
  Alcotest.(check (array int)) "two-step delay" [| 0; 0; 7; 8 |] out.(1)

let test_unfolding_preserves_streams () =
  let input v i = (v * 31) + i in
  List.iter
    (fun (name, g) ->
      List.iter
        (fun factor ->
          Alcotest.(check bool)
            (Printf.sprintf "%s x%d" name factor)
            true
            (Dfg.Interp.equivalent_unfolding g ~factor ~iterations:6 ~input))
        [ 1; 2; 3 ])
    (Workloads.Filters.all ())

let test_unfolding_equivalence_on_random_graphs () =
  let rng = Workloads.Prng.create 101 in
  for trial = 1 to 20 do
    let n = 2 + Workloads.Prng.int rng 8 in
    let base = Workloads.Random_dfg.random_dag rng ~n ~extra_edges:2 in
    (* sprinkle delayed edges *)
    let edges =
      Dfg.Graph.edges base
      @ List.init (Workloads.Prng.int rng 3) (fun _ ->
            {
              Dfg.Graph.src = Workloads.Prng.int rng n;
              dst = Workloads.Prng.int rng n;
              delay = 1 + Workloads.Prng.int rng 2;
              size = 0;
            })
    in
    let edges =
      List.filter
        (fun { Dfg.Graph.src; dst; delay; _ } -> not (src = dst && delay = 0))
        edges
    in
    let g =
      Dfg.Graph.of_edges ~names:(Dfg.Graph.names base)
        ~ops:(Array.init n (fun v -> Dfg.Graph.op base v))
        edges
    in
    let factor = 2 + Workloads.Prng.int rng 2 in
    Alcotest.(check bool)
      (Printf.sprintf "trial %d (factor %d)" trial factor)
      true
      (Dfg.Interp.equivalent_unfolding g ~factor ~iterations:5
         ~input:(fun v i -> (v * 17) + (3 * i)))
  done

let test_pipelining_retiming_shifts_streams () =
  (* a feed-forward chain pipelined by min_cycle_period: node v with
     cumulative lag r(v) >= 0 produces, from iteration r(v) onward, the
     original stream delayed by r(v) (zero prologue) *)
  let g = graph ~ops:[| "add"; "add"; "add" |] 3 [ (0, 1); (1, 2) ] in
  let time _ = 2 in
  let period, r = Dfg.Cyclic.min_cycle_period g ~time in
  Alcotest.(check int) "fully pipelined" 2 period;
  let retimed = Dfg.Cyclic.apply g r in
  let input _ i = (5 * i) + 1 in
  let iterations = 10 in
  let original = Dfg.Interp.run g ~iterations ~input in
  let shifted = Dfg.Interp.run retimed ~iterations ~input in
  (* FEAS lags grow downstream: retimed node v produces the original
     stream delayed by r(v) - r(source); sources keep lag 0 *)
  Alcotest.(check int) "source not lagged" 0 r.(0);
  for v = 0 to 2 do
    let lag = r.(v) in
    Alcotest.(check bool) (Printf.sprintf "lag of v%d non-negative" v) true (lag >= 0);
    for i = lag to iterations - 1 do
      Alcotest.(check int)
        (Printf.sprintf "v%d at %d" v i)
        original.(v).(i - lag)
        shifted.(v).(i)
    done
  done

let test_negative_iterations_rejected () =
  let g = path_graph 2 in
  Alcotest.check_raises "negative" (Invalid_argument "Interp.run: negative iterations")
    (fun () -> ignore (Dfg.Interp.run g ~iterations:(-1) ~input:(fun _ _ -> 0)))

let () =
  Alcotest.run "dfg.interp"
    [
      ( "semantics",
        [
          quick "operation semantics" test_op_semantics;
          quick "delays read the past" test_delays_read_past_iterations;
          quick "zero initial values" test_initial_values_are_zero;
          quick "negative iterations" test_negative_iterations_rejected;
        ] );
      ( "transformations",
        [
          quick "unfolding exact on benchmarks" test_unfolding_preserves_streams;
          quick "unfolding exact on random graphs" test_unfolding_equivalence_on_random_graphs;
          quick "pipelining shifts streams" test_pipelining_retiming_shifts_streams;
        ] );
    ]
