(* The shipped data/*.dfg netlists must parse, carry tables, and match the
   built-in benchmark generators they were derived from. *)

let data_dir = "../data"

let available () =
  Sys.file_exists data_dir && Sys.is_directory data_dir

let quick = Helpers.quick

let test_all_files_parse () =
  if not (available ()) then ()
  else begin
    let files =
      List.filter
        (fun f -> Filename.check_suffix f ".dfg")
        (Array.to_list (Sys.readdir data_dir))
    in
    Alcotest.(check bool) "nine benchmark files" true (List.length files >= 9);
    List.iter
      (fun f ->
        let g, table = Netlist.load ~path:(Filename.concat data_dir f) in
        Alcotest.(check bool) (f ^ " non-empty") true (Dfg.Graph.num_nodes g > 0);
        Alcotest.(check bool) (f ^ " carries a table") true (table <> None))
      files
  end

let test_files_match_generators () =
  if not (available ()) then ()
  else
    List.iter
      (fun (name, g) ->
        let file =
          Filename.concat data_dir
            (String.map (function ' ' -> '_' | c -> c) name ^ ".dfg")
        in
        if Sys.file_exists file then begin
          let g', _ = Netlist.load ~path:file in
          Alcotest.(check int) (name ^ " node count")
            (Dfg.Graph.num_nodes g)
            (Dfg.Graph.num_nodes g');
          Alcotest.(check int) (name ^ " edge count")
            (Dfg.Graph.num_edges g)
            (Dfg.Graph.num_edges g')
        end)
      (Workloads.Filters.extended ())

let test_files_synthesize () =
  if not (available ()) then ()
  else begin
    let path = Filename.concat data_dir "diffeq.dfg" in
    if Sys.file_exists path then
      match Netlist.load ~path with
      | g, Some table -> (
          let deadline = Core.Synthesis.min_deadline g table + 3 in
          match
            (Core.Synthesis.solve
               (Core.Synthesis.request ~algorithm:Core.Synthesis.Repeat
                  ~deadline g table))
              .Core.Synthesis.result
          with
          | Some r ->
              Alcotest.(check bool) "valid schedule" true
                (Sched.Schedule.respects_precedence g table r.Core.Synthesis.schedule)
          | None -> Alcotest.fail "diffeq.dfg infeasible")
      | _ -> Alcotest.fail "diffeq.dfg lost its table"
  end

let () =
  Alcotest.run "data_files"
    [
      ( "data",
        [
          quick "all files parse" test_all_files_parse;
          quick "match generators" test_files_match_generators;
          quick "synthesize from file" test_files_synthesize;
        ] );
    ]
