open Helpers

let test_empty () =
  let g = graph 0 [] in
  Alcotest.(check int) "no nodes" 0 (Dfg.Graph.num_nodes g);
  Alcotest.(check int) "no edges" 0 (Dfg.Graph.num_edges g);
  Alcotest.(check (list int)) "no roots" [] (Dfg.Graph.roots g);
  Alcotest.(check bool) "empty is a tree" true (Dfg.Graph.is_tree g)

let test_single_node () =
  let g = graph 1 [] in
  Alcotest.(check (list int)) "root" [ 0 ] (Dfg.Graph.roots g);
  Alcotest.(check (list int)) "leaf" [ 0 ] (Dfg.Graph.leaves g);
  Alcotest.(check bool) "tree" true (Dfg.Graph.is_tree g)

let test_diamond_degrees () =
  let g = diamond () in
  Alcotest.(check int) "out degree of fork" 2 (Dfg.Graph.dag_out_degree g 0);
  Alcotest.(check int) "in degree of join" 2 (Dfg.Graph.dag_in_degree g 3);
  Alcotest.(check (list int)) "roots" [ 0 ] (Dfg.Graph.roots g);
  Alcotest.(check (list int)) "leaves" [ 3 ] (Dfg.Graph.leaves g);
  Alcotest.(check bool) "diamond is not a tree" false (Dfg.Graph.is_tree g)

let test_succs_preds_consistency () =
  let g = diamond () in
  for v = 0 to 3 do
    List.iter
      (fun (w, d) ->
        Alcotest.(check bool)
          (Printf.sprintf "edge %d->%d mirrored in preds" v w)
          true
          (List.mem (v, d) (Dfg.Graph.preds g w)))
      (Dfg.Graph.succs g v)
  done

let test_edges_roundtrip () =
  let edges = [ (0, 1); (0, 2); (1, 3); (2, 3) ] in
  let g = graph 4 edges in
  let got =
    List.map (fun { Dfg.Graph.src; dst; _ } -> (src, dst)) (Dfg.Graph.edges g)
  in
  Alcotest.(check (list (pair int int)))
    "edges preserved" (List.sort compare edges) (List.sort compare got)

let test_delay_edges_ignored_by_dag () =
  let g = graph_with_delays 3 [ (0, 1, 0); (1, 2, 0); (2, 0, 1) ] in
  Alcotest.(check (list int)) "root ignores delayed edge" [ 0 ] (Dfg.Graph.roots g);
  Alcotest.(check (list int)) "dag succs of v2" [] (Dfg.Graph.dag_succs g 2);
  Alcotest.(check int) "full succs of v2" 1 (List.length (Dfg.Graph.succs g 2))

let test_zero_delay_self_loop_rejected () =
  Alcotest.check_raises "self loop"
    (Invalid_argument "Graph.of_edges: zero-delay self-loop") (fun () ->
      ignore (graph 1 [ (0, 0) ]))

let test_delayed_self_loop_allowed () =
  let g = graph_with_delays 1 [ (0, 0, 2) ] in
  Alcotest.(check int) "one edge" 1 (Dfg.Graph.num_edges g)

let test_cycle_rejected () =
  Alcotest.check_raises "zero-delay cycle"
    (Invalid_argument "Graph.of_edges: zero-delay subgraph contains a cycle")
    (fun () -> ignore (graph 3 [ (0, 1); (1, 2); (2, 0) ]))

let test_cycle_with_delay_allowed () =
  let g = graph_with_delays 3 [ (0, 1, 0); (1, 2, 0); (2, 0, 3) ] in
  Alcotest.(check int) "nodes" 3 (Dfg.Graph.num_nodes g)

let test_out_of_range_rejected () =
  Alcotest.check_raises "bad node"
    (Invalid_argument "Graph.of_edges: node 5 out of range") (fun () ->
      ignore (graph 3 [ (0, 5) ]))

let test_negative_delay_rejected () =
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Graph.of_edges: negative delay") (fun () ->
      ignore (graph_with_delays 2 [ (0, 1, -1) ]))

let test_ops_default_and_custom () =
  let g = graph 2 [ (0, 1) ] in
  Alcotest.(check string) "default op" "op" (Dfg.Graph.op g 0);
  let g = graph ~ops:[| "mul"; "add" |] 2 [ (0, 1) ] in
  Alcotest.(check string) "custom op" "mul" (Dfg.Graph.op g 0);
  Alcotest.(check string) "name" "v1" (Dfg.Graph.name g 1)

let test_mem_edge () =
  let g = diamond () in
  Alcotest.(check bool) "has 0->1" true (Dfg.Graph.mem_edge g ~src:0 ~dst:1);
  Alcotest.(check bool) "no 1->0" false (Dfg.Graph.mem_edge g ~src:1 ~dst:0)

let test_builder_matches_of_edges () =
  let b = Dfg.Builder.create () in
  let x = Dfg.Builder.add_node b ~name:"x" ~op:"mul" in
  let y = Dfg.Builder.add_node b ~name:"y" ~op:"add" in
  Dfg.Builder.add_edge b ~src:x ~dst:y;
  Dfg.Builder.add_delay_edge b ~src:y ~dst:x ~delay:1;
  Alcotest.(check int) "builder count" 2 (Dfg.Builder.num_nodes b);
  let g = Dfg.Builder.finish b in
  Alcotest.(check int) "ids are dense" 0 x;
  Alcotest.(check string) "names preserved" "y" (Dfg.Graph.name g y);
  Alcotest.(check int) "both edges present" 2 (Dfg.Graph.num_edges g);
  (* the builder stays usable after finish *)
  let g2 = Dfg.Builder.finish b in
  Alcotest.(check int) "re-finish" 2 (Dfg.Graph.num_nodes g2)

let test_multi_root_forest () =
  let g = graph 4 [ (0, 2); (1, 3) ] in
  Alcotest.(check (list int)) "two roots" [ 0; 1 ] (Dfg.Graph.roots g);
  Alcotest.(check bool) "forest is a tree" true (Dfg.Graph.is_tree g)

let () =
  Alcotest.run "dfg.graph"
    [
      ( "graph",
        [
          quick "empty graph" test_empty;
          quick "single node" test_single_node;
          quick "diamond degrees" test_diamond_degrees;
          quick "succs/preds mirror" test_succs_preds_consistency;
          quick "edges round-trip" test_edges_roundtrip;
          quick "delay edges off the DAG portion" test_delay_edges_ignored_by_dag;
          quick "zero-delay self loop rejected" test_zero_delay_self_loop_rejected;
          quick "delayed self loop allowed" test_delayed_self_loop_allowed;
          quick "zero-delay cycle rejected" test_cycle_rejected;
          quick "delayed cycle allowed" test_cycle_with_delay_allowed;
          quick "out-of-range node rejected" test_out_of_range_rejected;
          quick "negative delay rejected" test_negative_delay_rejected;
          quick "ops and names" test_ops_default_and_custom;
          quick "mem_edge" test_mem_edge;
          quick "builder" test_builder_matches_of_edges;
          quick "multi-root forest" test_multi_root_forest;
        ] );
    ]
