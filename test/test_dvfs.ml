(* DVFS levels + online incremental re-solve.

   Three layers under test: the Fulib.Dvfs level model (scaling laws,
   table expansion, mapping geometry), Sched.Reclaim (ALAP slack
   reclamation must keep every oracle green and only ever lower energy),
   and Online.Controller (the qcheck differential: an incremental
   resolve through the long-lived Repeat_session must be bit-identical
   to a from-scratch re-synthesis on the drifted table — that identity
   is what makes the bench group's speedup a free lunch). *)

open Helpers

let mid_deadline g tbl =
  let tmin = Core.Synthesis.min_deadline g tbl in
  tmin + (tmin / 5)

let bench name =
  let g = List.assoc name (Workloads.Filters.all ()) in
  let seed = Core.Experiments.seed_of_name name in
  let tbl =
    Workloads.Tables.for_graph (Workloads.Prng.create seed) ~library:lib3 g
  in
  (g, tbl)

(* --- the level model ------------------------------------------------------ *)

let test_scaling_laws () =
  let l75 = Fulib.Dvfs.level 75 in
  Alcotest.(check int) "75% freq" 75 l75.Fulib.Dvfs.freq_pct;
  Alcotest.(check int) "75% time = ceil(10000/75)" 134 l75.Fulib.Dvfs.time_pct;
  Alcotest.(check int) "75% energy = 75^2/100" 56 l75.Fulib.Dvfs.energy_pct;
  let l50 = Fulib.Dvfs.level 50 in
  Alcotest.(check int) "50% time doubles" 200 l50.Fulib.Dvfs.time_pct;
  Alcotest.(check int) "50% energy quarters" 25 l50.Fulib.Dvfs.energy_pct;
  Alcotest.(check int) "scale_time rounds up" 3 (Fulib.Dvfs.scale_time l75 2);
  Alcotest.(check int) "scale_time floor 1" 1 (Fulib.Dvfs.scale_time l50 0);
  Alcotest.(check int) "scale_energy rounds" 1 (Fulib.Dvfs.scale_energy l75 2);
  Alcotest.(check int) "nominal is identity" 7
    (Fulib.Dvfs.scale_time Fulib.Dvfs.nominal 7);
  Alcotest.check_raises "freq 0 rejected"
    (Invalid_argument "Dvfs.level: freq_pct must be in 1..100")
    (fun () -> ignore (Fulib.Dvfs.level 0));
  Alcotest.check_raises "ladder must start nominal"
    (Invalid_argument "Dvfs.ladder: level 0 must be the nominal 100%")
    (fun () -> ignore (Fulib.Dvfs.ladder [ 75; 50 ]))

let test_uniform_ladders () =
  let ls = Fulib.Dvfs.uniform ~levels:3 ~types:2 in
  Alcotest.(check int) "one ladder per type" 2 (Array.length ls);
  Array.iter
    (fun ladder ->
      Alcotest.(check (list int)) "100/75/50" [ 100; 75; 50 ]
        (Array.to_list
           (Array.map (fun l -> l.Fulib.Dvfs.freq_pct) ladder)))
    ls;
  let one = Fulib.Dvfs.uniform ~levels:1 ~types:3 in
  Array.iter
    (fun ladder ->
      Alcotest.(check int) "single level is nominal" 100
        ladder.(0).Fulib.Dvfs.freq_pct)
    one

let test_expand_identity () =
  let g, tbl = bench "elliptic" in
  let k = Fulib.Table.num_types tbl in
  let etbl, mapping =
    Fulib.Dvfs.expand tbl ~levels:(Fulib.Dvfs.uniform ~levels:1 ~types:k)
  in
  Alcotest.(check int) "same width" k (Fulib.Table.num_types etbl);
  for v = 0 to Fulib.Table.num_nodes tbl - 1 do
    for t = 0 to k - 1 do
      Alcotest.(check int) "time preserved"
        (Fulib.Table.time tbl ~node:v ~ftype:t)
        (Fulib.Table.time etbl ~node:v ~ftype:t);
      Alcotest.(check int) "cost preserved"
        (Fulib.Table.cost tbl ~node:v ~ftype:t)
        (Fulib.Table.cost etbl ~node:v ~ftype:t)
    done
  done;
  (* nominal-only expansion must not change what the solver returns *)
  let deadline = mid_deadline g tbl in
  let a = Assign.Dfg_assign.repeat g tbl ~deadline in
  let a' = Assign.Dfg_assign.repeat g etbl ~deadline in
  Alcotest.(check bool) "solver unchanged by identity expansion" true (a = a');
  Alcotest.(check int) "mapping is the identity" 0
    mapping.Fulib.Dvfs.level.(k - 1)

let test_expand_cells_and_mapping () =
  let tbl =
    table lib2 [ ([ 2; 4 ], [ 9; 3 ]); ([ 1; 3 ], [ 7; 2 ]) ]
  in
  let levels = Fulib.Dvfs.uniform ~levels:3 ~types:2 in
  let etbl, m = Fulib.Dvfs.expand tbl ~levels in
  Alcotest.(check int) "2 types x 3 levels" 6 (Fulib.Table.num_types etbl);
  Alcotest.(check int) "6 expanded" 6 (Fulib.Dvfs.num_expanded m);
  Alcotest.(check int) "2 base" 2 (Fulib.Dvfs.num_base m);
  Alcotest.(check (list int)) "siblings of first A level" [ 0; 1; 2 ]
    (Fulib.Dvfs.siblings m 1);
  Alcotest.(check (list int)) "siblings of last B level" [ 3; 4; 5 ]
    (Fulib.Dvfs.siblings m 5);
  for e = 0 to 5 do
    let b = m.Fulib.Dvfs.base.(e) in
    let l = levels.(b).(m.Fulib.Dvfs.level.(e)) in
    for v = 0 to 1 do
      Alcotest.(check int)
        (Printf.sprintf "cell time v%d e%d" v e)
        (Fulib.Dvfs.scale_time l (Fulib.Table.time tbl ~node:v ~ftype:b))
        (Fulib.Table.time etbl ~node:v ~ftype:e);
      Alcotest.(check int)
        (Printf.sprintf "cell cost v%d e%d" v e)
        (Fulib.Dvfs.scale_energy l (Fulib.Table.cost tbl ~node:v ~ftype:b))
        (Fulib.Table.cost etbl ~node:v ~ftype:e)
    done
  done;
  let name e = Fulib.Library.type_name (Fulib.Table.library etbl) e in
  Alcotest.(check string) "nominal keeps the bare name" "A" (name 0);
  Alcotest.(check string) "leveled name" "A@75" (name 1);
  Alcotest.(check string) "leveled name" "B@50" (name 5)

(* --- a leveled pipeline solve is cheaper and audits clean ----------------- *)

let leveled_request ?(levels = 3) ?(validate = false) g tbl ~deadline =
  Core.Synthesis.request
    ~levels:
      (Fulib.Dvfs.uniform ~levels ~types:(Fulib.Table.num_types tbl))
    ~validate ~algorithm:Core.Synthesis.Repeat ~deadline g tbl

let test_leveled_solve_saves_energy () =
  List.iter
    (fun name ->
      let g, tbl = bench name in
      let deadline = mid_deadline g tbl in
      let plain =
        Core.Synthesis.solve
          (Core.Synthesis.request ~algorithm:Core.Synthesis.Repeat ~deadline g
             tbl)
      in
      let leveled =
        Core.Synthesis.solve (leveled_request ~validate:true g tbl ~deadline)
      in
      match (plain.Core.Synthesis.result, leveled.Core.Synthesis.result) with
      | Some p, Some l ->
          Alcotest.(check bool) (name ^ ": leveled audits clean") true
            (leveled.Core.Synthesis.status = Core.Synthesis.Ok
            && leveled.Core.Synthesis.violations = []);
          Alcotest.(check bool)
            (name ^ ": levels never cost more energy")
            true
            (l.Core.Synthesis.cost <= p.Core.Synthesis.cost);
          let d = Option.get leveled.Core.Synthesis.dvfs in
          Alcotest.(check int)
            (name ^ ": energy_after is the result cost")
            l.Core.Synthesis.cost d.Core.Synthesis.energy_after;
          Alcotest.(check bool)
            (name ^ ": stats carry the energy facts")
            true
            (List.mem_assoc "energy" leveled.Core.Synthesis.stats
            && List.mem_assoc "energy_saved" leveled.Core.Synthesis.stats
            && List.mem_assoc "levels" leveled.Core.Synthesis.stats)
      | _ -> Alcotest.failf "%s: synthesis infeasible" name)
    [ "elliptic"; "diffeq"; "volterra" ]

(* --- reclamation: the retrofit scenario ----------------------------------- *)

(* Retrofit 3 levels onto a nominal (unleveled) solve: phase 1 never saw
   the ladder, so the schedule's slack is intact and reclamation must
   find real moves — and every oracle must stay green afterwards. *)
let retrofit name =
  let g, tbl = bench name in
  let deadline = 2 * Core.Synthesis.min_deadline g tbl in
  let etbl, mapping =
    Fulib.Dvfs.expand tbl
      ~levels:(Fulib.Dvfs.uniform ~levels:3 ~types:(Fulib.Table.num_types tbl))
  in
  match Assign.Dfg_assign.repeat g tbl ~deadline with
  | None -> Alcotest.failf "%s: nominal solve infeasible" name
  | Some a -> (
      match Sched.Min_resource.run g tbl a ~deadline with
      | None -> Alcotest.failf "%s: nominal schedule failed" name
      | Some { Sched.Min_resource.schedule; config; _ } ->
          let embed =
            Array.map
              (fun b -> mapping.Fulib.Dvfs.first.(b))
              schedule.Sched.Schedule.assignment
          in
          let s =
            {
              Sched.Schedule.start = Array.copy schedule.Sched.Schedule.start;
              assignment = embed;
            }
          in
          let config' = Array.make (Fulib.Table.num_types etbl) 0 in
          Array.iteri
            (fun b c -> config'.(mapping.Fulib.Dvfs.first.(b)) <- c)
            config;
          (g, tbl, etbl, mapping, config', deadline, s))

let test_reclaim_retrofit () =
  List.iter
    (fun name ->
      let g, base, etbl, mapping, config, deadline, s = retrofit name in
      let rc = Sched.Reclaim.run g etbl ~mapping ~config ~deadline s in
      Alcotest.(check bool) (name ^ ": reclamation finds moves") true
        (rc.Sched.Reclaim.moves > 0);
      Alcotest.(check bool) (name ^ ": energy only drops") true
        (rc.Sched.Reclaim.energy_after < rc.Sched.Reclaim.energy_before);
      let s' = rc.Sched.Reclaim.schedule in
      Array.iteri
        (fun v at ->
          if at < s.Sched.Schedule.start.(v) then
            Alcotest.failf "%s: node %d moved earlier" name v;
          Alcotest.(check int)
            (Printf.sprintf "%s: node %d keeps its base type" name v)
            mapping.Fulib.Dvfs.base.(s.Sched.Schedule.assignment.(v))
            mapping.Fulib.Dvfs.base.(s'.Sched.Schedule.assignment.(v)))
        s'.Sched.Schedule.start;
      let config' = Sched.Schedule.peak_usage etbl s' in
      let ok r =
        if not (Check.Violation.ok r) then
          Alcotest.failf "%s: %s" name (Check.Violation.summary r)
      in
      ok (Check.Schedule.check ~config:config' g etbl s' ~deadline);
      ok (Check.Config.check etbl s' ~config:config');
      ok
        (Check.Energy.check ~base ~mapping etbl s'.Sched.Schedule.assignment
           ~expect_energy:rc.Sched.Reclaim.energy_after);
      (* pooled physical instances never grow: per base type, the
         re-leveled schedule's peak CONCURRENT use (summed across sibling
         levels, which time-share one pool) stays within the original
         allocation — note the per-level config' totals can exceed this,
         since summing per-level peaks ignores the time-sharing *)
      let nb = Fulib.Dvfs.num_base mapping in
      let cap = Array.make nb 0 in
      Array.iteri
        (fun e c ->
          cap.(mapping.Fulib.Dvfs.base.(e)) <-
            cap.(mapping.Fulib.Dvfs.base.(e)) + c)
        config;
      let pooled = Array.make_matrix nb deadline 0 in
      Array.iteri
        (fun v at ->
          let e = s'.Sched.Schedule.assignment.(v) in
          let b = mapping.Fulib.Dvfs.base.(e) in
          for step = at to min (at + Fulib.Table.time etbl ~node:v ~ftype:e) deadline - 1 do
            pooled.(b).(step) <- pooled.(b).(step) + 1
          done)
        s'.Sched.Schedule.start;
      Array.iteri
        (fun b row ->
          let peak = Array.fold_left max 0 row in
          if peak > cap.(b) then
            Alcotest.failf "%s: base type %d peaks at %d for %d instances"
              name b peak cap.(b))
        pooled)
    [ "elliptic"; "diffeq" ]

let test_reclaim_noop_on_missed_deadline () =
  let g, _, etbl, mapping, config, deadline, s = retrofit "diffeq" in
  let rc = Sched.Reclaim.run g etbl ~mapping ~config ~deadline:(deadline / 2) s in
  ignore deadline;
  Alcotest.(check int) "missed deadline: no moves" 0 rc.Sched.Reclaim.moves;
  Alcotest.(check bool) "missed deadline: schedule untouched" true
    (rc.Sched.Reclaim.schedule == s)

(* --- the online controller ------------------------------------------------ *)

let random_instance seed n extra =
  let rng = Workloads.Prng.create seed in
  let g = Workloads.Random_dfg.random_dag rng ~n ~extra_edges:extra in
  let tbl = Workloads.Tables.for_graph rng ~library:lib3 g in
  (g, tbl, mid_deadline g tbl)

let outcome_equal (a : Online.Controller.outcome option)
    (b : Online.Controller.outcome option) =
  match (a, b) with
  | None, None -> true
  | Some a, Some b ->
      a.Online.Controller.assignment = b.Online.Controller.assignment
      && a.Online.Controller.cost = b.Online.Controller.cost
      && a.Online.Controller.schedule = b.Online.Controller.schedule
      && a.Online.Controller.config = b.Online.Controller.config
  | _ -> false

let test_controller_basics () =
  let g, tbl, deadline = random_instance 7 24 6 in
  let ctrl = Online.Controller.create g tbl ~deadline in
  (match Online.Controller.current ctrl with
  | None -> Alcotest.fail "initial design infeasible"
  | Some o ->
      Alcotest.(check int) "initial cost is the repeat cost"
        (Assign.Assignment.total_cost tbl
           (Option.get (Assign.Dfg_assign.repeat g tbl ~deadline)))
        o.Online.Controller.cost);
  Alcotest.(check bool) "fresh design not at risk" false
    (Online.Controller.at_risk ctrl);
  (* an enormous drift on every node must register as risk *)
  for v = 0 to Dfg.Graph.num_nodes g - 1 do
    Online.Controller.scale_node ctrl ~node:v ~pct:800
  done;
  Alcotest.(check bool) "800% drift is at risk" true
    (Online.Controller.at_risk ctrl);
  Alcotest.check_raises "bad row width"
    (Invalid_argument "Controller.set_times: row width mismatch") (fun () ->
      Online.Controller.set_times ctrl ~node:0 [| 1 |]);
  Alcotest.check_raises "time zero rejected"
    (Invalid_argument "Controller.set_times: time < 1") (fun () ->
      Online.Controller.set_times ctrl ~node:0
        (Array.make (Fulib.Table.num_types tbl) 0))

let test_controller_leveled_round_trip () =
  (* drift a leveled elliptic design through risky territory and back;
     the controller must recover the original energy when times return
     to nominal *)
  let g, tbl = bench "elliptic" in
  let deadline = mid_deadline g tbl in
  let etbl, _ =
    Fulib.Dvfs.expand tbl
      ~levels:(Fulib.Dvfs.uniform ~levels:3 ~types:(Fulib.Table.num_types tbl))
  in
  let ctrl = Online.Controller.create g etbl ~deadline in
  let initial = Online.Controller.current ctrl in
  (match initial with
  | None -> Alcotest.fail "leveled elliptic infeasible"
  | Some _ -> ());
  let nominal_row v =
    Array.init (Fulib.Table.num_types etbl) (fun t ->
        Fulib.Table.time etbl ~node:v ~ftype:t)
  in
  let saved = Array.init (Dfg.Graph.num_nodes g) nominal_row in
  Online.Controller.scale_node ctrl ~node:3 ~pct:300;
  ignore (Online.Controller.resolve ctrl);
  Online.Controller.set_times ctrl ~node:3 saved.(3);
  let back = Online.Controller.resolve ctrl in
  Alcotest.(check bool) "nominal times restore the initial design" true
    (outcome_equal initial back)

(* The differential: after every perturbation, the incremental resolve
   and a from-scratch re-synthesis must agree exactly — same feasibility,
   same assignment, same schedule, same cost. 30 random DAGs x 4 rounds. *)
let incremental_equals_scratch =
  QCheck.Test.make ~count:30 ~name:"incremental re-solve == from-scratch"
    QCheck.(
      pair (int_range 0 10_000)
        (pair (int_range 6 40) (int_range 0 12)))
    (fun (seed, (n, extra)) ->
      let g, tbl, deadline = random_instance seed n extra in
      let ctrl = Online.Controller.create g tbl ~deadline in
      let rng = Workloads.Prng.create (seed lxor 0xd1ff) in
      let rounds = 4 in
      let ok = ref true in
      for _ = 1 to rounds do
        let node = Workloads.Prng.int rng n in
        let pct = Workloads.Prng.int_in rng 50 300 in
        Online.Controller.scale_node ctrl ~node ~pct;
        let scratch = Online.Controller.resolve_scratch ctrl in
        let inc = Online.Controller.resolve ctrl in
        if not (outcome_equal inc scratch) then ok := false
      done;
      !ok)

let () =
  Alcotest.run "dvfs"
    [
      ( "levels",
        [
          quick "scaling laws and guards" test_scaling_laws;
          quick "uniform ladders" test_uniform_ladders;
          quick "identity expansion" test_expand_identity;
          quick "expanded cells and mapping" test_expand_cells_and_mapping;
        ] );
      ( "pipeline",
        [
          quick "leveled solves save energy and audit clean"
            test_leveled_solve_saves_energy;
        ] );
      ( "reclaim",
        [
          quick "retrofit finds moves, oracles stay green"
            test_reclaim_retrofit;
          quick "missed deadline is a no-op" test_reclaim_noop_on_missed_deadline;
        ] );
      ( "online",
        [
          quick "controller basics" test_controller_basics;
          quick "leveled round trip" test_controller_leveled_round_trip;
          QCheck_alcotest.to_alcotest incremental_equals_scratch;
        ] );
    ]
