(* Property-based tests (qcheck) on the core invariants. Instances are
   generated through the repository's own seeded generators, driven by a
   qcheck-provided seed, so shrinking still works on the seed. *)

let of_seed f =
  QCheck.make ~print:string_of_int QCheck.Gen.(map abs int) |> fun arb ->
  (arb, f)

let prop name count (arb, f) =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)

(* Build a random (graph, table, deadline) instance from a seed. *)
let instance ?(max_nodes = 8) ?(types = 2) ?(tree = false) seed =
  let rng = Workloads.Prng.create seed in
  let n = 1 + Workloads.Prng.int rng max_nodes in
  let g =
    if tree then Workloads.Random_dfg.random_tree rng ~n ~max_children:3
    else Workloads.Random_dfg.random_dag rng ~n ~extra_edges:2
  in
  let lib =
    Fulib.Library.make (Array.init types (fun i -> Printf.sprintf "T%d" i))
  in
  let tbl =
    Workloads.Tables.random_arbitrary rng ~library:lib ~num_nodes:n ~max_time:4
      ~max_cost:9
  in
  let tmin = Assign.Assignment.min_makespan g tbl in
  let deadline = tmin + Workloads.Prng.int rng 8 in
  (g, tbl, deadline)

(* --- Phase 1 properties --------------------------------------------- *)

let tree_assign_optimal =
  of_seed (fun seed ->
      let g, tbl, deadline = instance ~tree:true seed in
      match
        ( Assign.Tree_assign.solve_with_cost g tbl ~deadline,
          Helpers.brute_force g tbl ~deadline )
      with
      | Some (a, c), Some (_, opt) ->
          Assign.Assignment.is_feasible g tbl a ~deadline && c = opt
      | None, None -> true
      | _ -> false)

let path_assign_optimal =
  of_seed (fun seed ->
      let rng = Workloads.Prng.create seed in
      let n = 1 + Workloads.Prng.int rng 7 in
      let lib = Helpers.lib2 in
      let tbl =
        Workloads.Tables.random_arbitrary rng ~library:lib ~num_nodes:n
          ~max_time:4 ~max_cost:9
      in
      let g = Helpers.path_graph n in
      let deadline = Workloads.Prng.int rng 30 in
      match
        ( Assign.Path_assign.solve_with_cost tbl ~deadline,
          Helpers.brute_force g tbl ~deadline )
      with
      | Some (a, c), Some (_, opt) ->
          Assign.Assignment.is_feasible g tbl a ~deadline && c = opt
      | None, None -> true
      | _ -> false)

let exact_matches_bruteforce =
  of_seed (fun seed ->
      let g, tbl, deadline = instance ~max_nodes:6 seed in
      match
        (Assign.Exact.solve g tbl ~deadline, Helpers.brute_force g tbl ~deadline)
      with
      | Some (_, c), Some (_, opt) -> c = opt
      | None, None -> true
      | _ -> false)

let heuristics_feasible =
  of_seed (fun seed ->
      let g, tbl, deadline = instance ~max_nodes:10 ~types:3 seed in
      let check = function
        | Some a -> Assign.Assignment.is_feasible g tbl a ~deadline
        | None -> false (* deadline >= tmin, so a solution always exists *)
      in
      check (Assign.Dfg_assign.once g tbl ~deadline)
      && check (Assign.Dfg_assign.repeat g tbl ~deadline)
      && check (Assign.Greedy.solve g tbl ~deadline)
      && check (Assign.Greedy.solve_iterative g tbl ~deadline))

let heuristics_bounded_by_exact =
  of_seed (fun seed ->
      let g, tbl, deadline = instance ~max_nodes:6 seed in
      match Assign.Exact.solve g tbl ~deadline with
      | None -> true
      | Some (_, opt) ->
          let not_better = function
            | Some a -> Assign.Assignment.total_cost tbl a >= opt
            | None -> false
          in
          not_better (Assign.Dfg_assign.once g tbl ~deadline)
          && not_better (Assign.Dfg_assign.repeat g tbl ~deadline)
          && not_better (Assign.Greedy.solve g tbl ~deadline))

let dp_monotone_in_deadline =
  of_seed (fun seed ->
      let g, tbl, deadline = instance ~tree:true ~max_nodes:7 seed in
      let cost d =
        Option.map snd (Assign.Tree_assign.solve_with_cost g tbl ~deadline:d)
      in
      match (cost deadline, cost (deadline + 3)) with
      | Some c, Some c' -> c' <= c
      | None, _ -> true
      | Some _, None -> false)

let expansion_preserves_critical_paths =
  of_seed (fun seed ->
      let g, _, _ = instance ~max_nodes:7 seed in
      let t = Dfg.Expand.expand g in
      let names gr path = List.map (Dfg.Graph.name gr) path in
      let original =
        List.sort_uniq compare
          (List.map (names g) (Dfg.Paths.critical_paths g))
      in
      let expanded =
        List.sort_uniq compare
          (List.map (names t.Dfg.Expand.graph)
             (Dfg.Paths.critical_paths t.Dfg.Expand.graph))
      in
      Dfg.Graph.is_tree t.Dfg.Expand.graph && original = expanded)

let knapsack_reduction_sound =
  of_seed (fun seed ->
      let rng = Workloads.Prng.create seed in
      let n = 1 + Workloads.Prng.int rng 6 in
      let items =
        Array.init n (fun _ ->
            { Assign.Knapsack.value = Workloads.Prng.int rng 12;
              weight = Workloads.Prng.int rng 8 })
      in
      let capacity = Workloads.Prng.int rng 16 in
      let target_value = Workloads.Prng.int rng 30 in
      Assign.Knapsack.decision ~items ~capacity ~target_value
      = Assign.Np_reduction.decide_via_assignment ~items ~capacity ~target_value)

(* --- Phase 2 properties --------------------------------------------- *)

let schedule_valid =
  of_seed (fun seed ->
      let g, tbl, deadline = instance ~max_nodes:10 ~types:3 seed in
      match Assign.Dfg_assign.repeat g tbl ~deadline with
      | None -> false
      | Some a -> (
          match Sched.Min_resource.run g tbl a ~deadline with
          | None -> false
          | Some { Sched.Min_resource.schedule; config; lower_bound } ->
              Sched.Schedule.respects_precedence g tbl schedule
              && Sched.Schedule.meets_deadline tbl schedule ~deadline
              && Sched.Schedule.fits tbl schedule ~config
              && Array.for_all2 ( <= ) lower_bound
                   (Array.map2 max lower_bound config)
              && Sched.Config.dominates
                   (Sched.Min_resource.naive_config tbl a)
                   config))

let lower_bound_sound =
  (* the lower bound must hold for ANY valid schedule, in particular the
     generated one: peak usage >= bound is checked per type *)
  of_seed (fun seed ->
      let g, tbl, deadline = instance ~max_nodes:9 ~types:2 seed in
      match Assign.Greedy.solve g tbl ~deadline with
      | None -> false
      | Some a -> (
          match
            ( Sched.Lower_bound.per_type g tbl a ~deadline,
              Sched.Min_resource.run g tbl a ~deadline )
          with
          | Some lb, Some { Sched.Min_resource.config; _ } ->
              Array.for_all2 ( <= ) lb config
          | _ -> false))

let alap_never_before_asap =
  of_seed (fun seed ->
      let g, tbl, deadline = instance ~max_nodes:10 seed in
      let a = Assign.Assignment.all_fastest tbl in
      match Sched.Asap_alap.alap g tbl a ~deadline with
      | None -> false
      | Some alap ->
          let asap = Sched.Asap_alap.asap g tbl a in
          Array.for_all2 ( <= ) asap alap)

(* --- Retiming properties --------------------------------------------- *)

let retiming_sound =
  of_seed (fun seed ->
      let rng = Workloads.Prng.create seed in
      let n = 2 + Workloads.Prng.int rng 8 in
      let g0 = Workloads.Random_dfg.random_dag rng ~n ~extra_edges:2 in
      (* add a delayed back edge to make it cyclic *)
      let edges =
        { Dfg.Graph.src = n - 1; dst = 0; delay = 1 + Workloads.Prng.int rng 3; size = 0 }
        :: Dfg.Graph.edges g0
      in
      let g =
        Dfg.Graph.of_edges ~names:(Dfg.Graph.names g0)
          ~ops:(Array.init n (fun v -> Dfg.Graph.op g0 v))
          edges
      in
      let time v = 1 + (v mod 3) in
      let period, r = Dfg.Cyclic.min_cycle_period g ~time in
      let retimed = Dfg.Cyclic.apply g r in
      Dfg.Cyclic.is_legal g r
      && Dfg.Cyclic.cycle_period retimed ~time = period
      && period <= Dfg.Cyclic.cycle_period g ~time
      && float_of_int period >= Dfg.Cyclic.iteration_bound g ~time -. 1e-6)

let () =
  Alcotest.run "properties"
    [
      ( "assignment",
        [
          prop "Tree_assign is optimal on random trees" 150 tree_assign_optimal;
          prop "Path_assign is optimal on random paths" 200 path_assign_optimal;
          prop "Exact matches brute force" 120 exact_matches_bruteforce;
          prop "heuristics always feasible" 150 heuristics_feasible;
          prop "heuristics never beat the optimum" 120 heuristics_bounded_by_exact;
          prop "optimal cost monotone in deadline" 120 dp_monotone_in_deadline;
          prop "expansion preserves critical paths" 120 expansion_preserves_critical_paths;
          prop "knapsack reduction answer-preserving" 200 knapsack_reduction_sound;
        ] );
      ( "scheduling",
        [
          prop "generated schedules are valid" 120 schedule_valid;
          prop "lower bound below achieved config" 120 lower_bound_sound;
          prop "ASAP <= ALAP" 150 alap_never_before_asap;
        ] );
      ( "retiming",
        [ prop "min_cycle_period sound" 80 retiming_sound ] );
    ]
