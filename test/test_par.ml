(* Par.Pool: unit tests for the pool semantics (ordering, exceptions,
   nesting, env control, sequential fallback) and differential suites
   proving the parallel paths bit-identical to the sequential ones — on
   random DAG grids, the six paper benchmarks, Repeat's candidate search,
   Pareto sweeps and batch workload generation. *)

open Helpers

(* One parallel and one sequential pool shared by every test: the
   differential suites run the same computation on both and demand
   structural equality. *)
let p1 = Par.Pool.create ~domains:1 ()
let p4 = Par.Pool.create ~domains:4 ()

(* --- pool combinators ---------------------------------------------------- *)

let test_map_array_order () =
  let arr = Array.init 257 (fun i -> i) in
  let expected = Array.map (fun x -> (x * x) + 1) arr in
  Alcotest.(check (array int))
    "parallel map == Array.map" expected
    (Par.Pool.map_array p4 (fun x -> (x * x) + 1) arr);
  Alcotest.(check (array int))
    "sequential map == Array.map" expected
    (Par.Pool.map_array p1 (fun x -> (x * x) + 1) arr);
  Alcotest.(check (array int)) "empty" [||] (Par.Pool.map_array p4 succ [||])

let test_map_list_order () =
  let l = List.init 100 (fun i -> i) in
  Alcotest.(check (list int))
    "map_list order" (List.map succ l)
    (Par.Pool.map_list p4 succ l)

let test_parallel_for () =
  let a = Array.make 100 0 in
  Par.Pool.parallel_for p4 ~lo:0 ~hi:100 (fun i -> a.(i) <- i * i);
  Alcotest.(check (array int)) "default chunking"
    (Array.init 100 (fun i -> i * i))
    a;
  let b = Array.make 100 0 in
  Par.Pool.parallel_for p4 ~chunk:7 ~lo:5 ~hi:95 (fun i -> b.(i) <- i + 1);
  Alcotest.(check (array int)) "explicit chunk, half-open bounds"
    (Array.init 100 (fun i -> if i >= 5 && i < 95 then i + 1 else 0))
    b

let test_fanout () =
  let a, b = Par.Pool.fanout2 p4 (fun () -> 6 * 7) (fun () -> "ok") in
  Alcotest.(check int) "fanout2 fst" 42 a;
  Alcotest.(check string) "fanout2 snd" "ok" b;
  Alcotest.(check (list int))
    "fanout order" [ 0; 10; 20 ]
    (Par.Pool.fanout p4 (List.init 3 (fun i () -> i * 10)))

let test_exception_propagation () =
  let raised =
    try
      ignore
        (Par.Pool.map_array p4
           (fun i -> if i mod 3 = 1 then failwith (string_of_int i) else i)
           (Array.init 64 (fun i -> i)));
      None
    with Failure m -> Some m
  in
  Alcotest.(check (option string)) "lowest-index exception wins" (Some "1") raised;
  Alcotest.(check (array int))
    "pool usable after an exception" [| 2; 4; 6 |]
    (Par.Pool.map_array p4 (fun x -> x * 2) [| 1; 2; 3 |])

let test_nested_create_rejected () =
  let rejected =
    Par.Pool.map_array p4
      (fun _ ->
        match Par.Pool.create ~domains:2 () with
        | _ -> false
        | exception Par.Pool.Nested_pool -> true)
      (Array.init 8 (fun i -> i))
  in
  Alcotest.(check bool)
    "Pool.create inside a task raises Nested_pool" true
    (Array.for_all (fun b -> b) rejected)

let test_nested_map_degrades () =
  (* a combinator used from inside a task runs inline, with the same
     results as at top level *)
  let result =
    Par.Pool.map_array p4
      (fun i ->
        Alcotest.(check bool) "in_task inside" true (Par.Pool.in_task ());
        Array.to_list
          (Par.Pool.map_array p4 (fun j -> (i * 10) + j) (Array.init 4 (fun j -> j))))
      (Array.init 6 (fun i -> i))
  in
  Alcotest.(check bool) "in_task outside" false (Par.Pool.in_task ());
  Array.iteri
    (fun i l ->
      Alcotest.(check (list int))
        "nested map results" (List.init 4 (fun j -> (i * 10) + j)) l)
    result

let test_sequential_fallback () =
  Alcotest.(check bool) "domains:1 is sequential" true (Par.Pool.is_sequential p1);
  Alcotest.(check int) "domain_count 1" 1 (Par.Pool.domain_count p1);
  Alcotest.(check bool) "domains:4 is parallel" false (Par.Pool.is_sequential p4);
  Alcotest.(check int) "domain_count 4" 4 (Par.Pool.domain_count p4)

let test_create_invalid () =
  (match Par.Pool.create ~domains:0 () with
  | _ -> Alcotest.fail "domains:0 accepted"
  | exception Invalid_argument _ -> ());
  Par.Pool.with_pool ~domains:2 (fun p ->
      Alcotest.(check int) "with_pool width" 2 (Par.Pool.domain_count p))

let test_shutdown () =
  let p = Par.Pool.create ~domains:2 () in
  Alcotest.(check (array int)) "works" [| 1 |] (Par.Pool.map_array p succ [| 0 |]);
  Par.Pool.shutdown p;
  Par.Pool.shutdown p;
  (* double shutdown is a no-op *)
  match Par.Pool.map_array p succ [| 0 |] with
  | _ -> Alcotest.fail "pool usable after shutdown"
  | exception Invalid_argument _ -> ()

let test_domains_from_env () =
  let fake v k = if k = "HETSCHED_DOMAINS" then v else None in
  let rec_default = Domain.recommended_domain_count () in
  let resolve v = Par.Pool.domains_from_env ~getenv:(fake v) () in
  Alcotest.(check int) "unset -> recommended" rec_default (resolve None);
  Alcotest.(check int) "4" 4 (resolve (Some "4"));
  Alcotest.(check int) "1 = sequential" 1 (resolve (Some "1"));
  Alcotest.(check int) "0 clamps to 1" 1 (resolve (Some "0"));
  Alcotest.(check int) "negative clamps to 1" 1 (resolve (Some "-3"));
  Alcotest.(check int) "whitespace tolerated" 2 (resolve (Some " 2 "));
  Alcotest.(check int) "clamped to 128" 128 (resolve (Some "4096"));
  Alcotest.(check int) "129 clamps to 128" 128 (resolve (Some "129"));
  Alcotest.(check int) "128 passes through" 128 (resolve (Some "128"));
  Alcotest.(check int) "junk -> recommended" rec_default (resolve (Some "junk"));
  Alcotest.(check int) "empty -> recommended" rec_default (resolve (Some ""));
  Alcotest.(check int) "whitespace-only -> recommended" rec_default
    (resolve (Some "   "));
  Alcotest.(check int) "trailing junk -> recommended" rec_default
    (resolve (Some "2x"));
  Alcotest.(check int) "very negative clamps to 1" 1
    (resolve (Some "-1000000"))

(* --- differential: parallel == sequential -------------------------------- *)

let algorithms = Core.Synthesis.[ Greedy; Once; Repeat ]

let random_instance seed ~n ~extra =
  let rng = Workloads.Prng.create seed in
  let g = Workloads.Random_dfg.random_dag rng ~n ~extra_edges:extra in
  let tbl = Workloads.Tables.for_graph rng ~library:lib3 g in
  (g, tbl)

let diff_grid =
  QCheck.Test.make ~count:10 ~name:"experiment grid: parallel == sequential"
    QCheck.(triple (int_range 0 1000) (int_range 4 20) (int_range 0 8))
    (fun (seed, n, extra) ->
      let rng = Workloads.Prng.create seed in
      let g = Workloads.Random_dfg.random_dag rng ~n ~extra_edges:extra in
      let r1 =
        Core.Experiments.run_benchmark ~pool:p1 ~name:"rand" ~seed ~algorithms g
      in
      let r4 =
        Core.Experiments.run_benchmark ~pool:p4 ~name:"rand" ~seed ~algorithms g
      in
      r1 = r4)

let diff_repeat_search =
  QCheck.Test.make ~count:20
    ~name:"repeat_search: parallel == sequential, feasible"
    QCheck.(triple (int_range 0 1000) (int_range 4 24) (int_range 0 10))
    (fun (seed, n, extra) ->
      let g, tbl = random_instance seed ~n ~extra in
      let tmin = Core.Synthesis.min_deadline g tbl in
      let deadline = tmin + (tmin / 3) in
      let a1 = Assign.Dfg_assign.repeat_search ~pool:p1 g tbl ~deadline in
      let a4 = Assign.Dfg_assign.repeat_search ~pool:p4 g tbl ~deadline in
      (match a4 with
      | Some a ->
          if not (Assign.Assignment.is_feasible g tbl a ~deadline) then
            QCheck.Test.fail_report "repeat_search result misses the deadline"
      | None -> ());
      a1 = a4)

let diff_frontier =
  QCheck.Test.make ~count:10 ~name:"frontier sweep: parallel == sequential"
    QCheck.(triple (int_range 0 1000) (int_range 4 16) (int_range 0 6))
    (fun (seed, n, extra) ->
      let g, tbl = random_instance seed ~n ~extra in
      let tmin = Core.Synthesis.min_deadline g tbl in
      Core.Frontier.trace ~pool:p1 g tbl ~max_deadline:(tmin + 6)
      = Core.Frontier.trace ~pool:p4 g tbl ~max_deadline:(tmin + 6))

let test_paper_benchmarks_differential () =
  List.iter
    (fun (name, g) ->
      let seed =
        String.fold_left (fun acc c -> (acc * 31) + Char.code c) 17 name
      in
      let r1 =
        Core.Experiments.run_benchmark ~pool:p1 ~name ~seed ~algorithms g
      in
      let r4 =
        Core.Experiments.run_benchmark ~pool:p4 ~name ~seed ~algorithms g
      in
      Alcotest.(check bool) (name ^ ": report bit-identical") true (r1 = r4))
    (Workloads.Filters.all ())

let test_batch_differential () =
  let gen rng = Workloads.Random_dfg.random_dag rng ~n:30 ~extra_edges:6 in
  let b1 = Workloads.Random_dfg.batch ~pool:p1 (Workloads.Prng.create 7) ~count:12 gen in
  let b4 = Workloads.Random_dfg.batch ~pool:p4 (Workloads.Prng.create 7) ~count:12 gen in
  (* the reference: sequential splits off the same parent *)
  let parent = Workloads.Prng.create 7 in
  let ref_graphs = Array.init 12 (fun _ -> gen (Workloads.Prng.split parent)) in
  Alcotest.(check int) "count" 12 (Array.length b4);
  Array.iteri
    (fun i g4 ->
      Alcotest.(check bool)
        (Printf.sprintf "graph %d: pool4 == pool1" i)
        true
        (Dfg.Graph.edges g4 = Dfg.Graph.edges b1.(i));
      Alcotest.(check bool)
        (Printf.sprintf "graph %d: pool == sequential reference" i)
        true
        (Dfg.Graph.edges g4 = Dfg.Graph.edges ref_graphs.(i)))
    b4;
  (* chunking is a pure scheduling knob: any chunk size, same graphs *)
  List.iter
    (fun chunk ->
      let bc =
        Workloads.Random_dfg.batch ~pool:p4 ~chunk (Workloads.Prng.create 7)
          ~count:12 gen
      in
      Array.iteri
        (fun i g ->
          Alcotest.(check bool)
            (Printf.sprintf "graph %d: chunk %d == default" i chunk)
            true
            (Dfg.Graph.edges g = Dfg.Graph.edges b4.(i)))
        bc)
    [ 1; 5; 12; 100 ]

let test_repeat_search_on_benchmarks () =
  (* the candidate search stays parallel/sequential-identical on every
     paper benchmark, and its result always respects the deadline *)
  List.iter
    (fun (name, g) ->
      let seed =
        String.fold_left (fun acc c -> (acc * 31) + Char.code c) 17 name
      in
      let rng = Workloads.Prng.create seed in
      let tbl = Workloads.Tables.for_graph rng ~library:lib3 g in
      let tmin = Core.Synthesis.min_deadline g tbl in
      let deadline = tmin + (tmin / 5) in
      let s1 = Assign.Dfg_assign.repeat_search ~pool:p1 g tbl ~deadline in
      let s4 = Assign.Dfg_assign.repeat_search ~pool:p4 g tbl ~deadline in
      Alcotest.(check bool) (name ^ ": search par == seq") true (s1 = s4);
      match s4 with
      | Some a ->
          Alcotest.(check bool)
            (name ^ ": search feasible") true
            (Assign.Assignment.is_feasible g tbl a ~deadline)
      | None -> ())
    (Workloads.Filters.all ())

(* --- run_benchmark validation -------------------------------------------- *)

let test_missing_greedy_rejected () =
  let g = Workloads.Filters.diffeq () in
  (match
     Core.Experiments.run_benchmark ~name:"x" ~seed:1
       ~algorithms:Core.Synthesis.[ Once; Repeat ]
       g
   with
  | _ -> Alcotest.fail "algorithms without Greedy accepted"
  | exception Invalid_argument msg ->
      Alcotest.(check bool)
        "message names Greedy" true
        (List.exists
           (fun part -> part = "Greedy,")
           (String.split_on_char ' ' msg)));
  match Core.Experiments.run_benchmark ~name:"x" ~seed:1 ~algorithms:[] g with
  | _ -> Alcotest.fail "empty algorithm list accepted"
  | exception Invalid_argument _ -> ()

let () =
  Alcotest.run "par"
    [
      ( "pool",
        [
          quick "map_array order" test_map_array_order;
          quick "map_list order" test_map_list_order;
          quick "parallel_for" test_parallel_for;
          quick "fanout" test_fanout;
          quick "exception propagation" test_exception_propagation;
          quick "nested pool creation rejected" test_nested_create_rejected;
          quick "nested combinators degrade" test_nested_map_degrades;
          quick "sequential fallback" test_sequential_fallback;
          quick "create validation" test_create_invalid;
          quick "shutdown" test_shutdown;
          quick "HETSCHED_DOMAINS parsing" test_domains_from_env;
        ] );
      ( "differential",
        [
          QCheck_alcotest.to_alcotest diff_grid;
          QCheck_alcotest.to_alcotest diff_repeat_search;
          QCheck_alcotest.to_alcotest diff_frontier;
          quick "six paper benchmarks" test_paper_benchmarks_differential;
          quick "batch generation" test_batch_differential;
          quick "repeat_search on general DFGs" test_repeat_search_on_benchmarks;
        ] );
      ( "validation",
        [ quick "run_benchmark requires Greedy" test_missing_greedy_rejected ] );
    ]
