(* The batch synthesis service: content-addressed cache (digest canonical
   in edge order, byte-identical replay, LRU), bounded-queue server
   (order, isolation, pool parity) and the JSONL wire format. *)

let lib3 = Fulib.Library.standard3

let table_for ~seed g =
  let rng = Workloads.Prng.create seed in
  Workloads.Tables.for_graph rng ~library:lib3 g

let instance ~seed =
  let rng = Workloads.Prng.create seed in
  let g = Workloads.Random_dfg.random_dag rng ~n:14 ~extra_edges:4 in
  let tbl = Workloads.Tables.random_tradeoff rng ~library:lib3 ~num_nodes:14 in
  (g, tbl)

let request ?scheduler ?validate ?budget_ms ?(algorithm = Core.Synthesis.Repeat)
    ?(slack = 3) (g, tbl) =
  let tmin = Core.Synthesis.min_deadline g tbl in
  Core.Synthesis.request ?scheduler ?validate ?budget_ms ~algorithm
    ~deadline:(tmin + slack) g tbl

let counter name =
  Option.value (Obs.Counter.value_of name) ~default:0

(* --- digest ------------------------------------------------------------ *)

let test_digest_deterministic () =
  let req = request (instance ~seed:3) in
  Alcotest.(check string)
    "same request, same digest" (Serve.Cache.digest req)
    (Serve.Cache.digest req);
  let g, tbl = instance ~seed:4 in
  Alcotest.(check bool)
    "different instance, different digest" false
    (Serve.Cache.digest req = Serve.Cache.digest (request (g, tbl)))

let test_digest_sensitivity () =
  let g, tbl = instance ~seed:5 in
  let base = request (g, tbl) in
  let d = Serve.Cache.digest base in
  let differs label req =
    Alcotest.(check bool) label false (Serve.Cache.digest req = d)
  in
  differs "deadline" (request ~slack:4 (g, tbl));
  differs "algorithm" (request ~algorithm:Core.Synthesis.Greedy (g, tbl));
  differs "scheduler" (request ~scheduler:Core.Synthesis.Force_directed (g, tbl));
  differs "validate" (request ~validate:true (g, tbl));
  differs "budget" (request ~budget_ms:1000 (g, tbl));
  (* trace is excluded: it toggles span emission, never the response *)
  Alcotest.(check string)
    "trace ignored" d
    (Serve.Cache.digest
       { base with Core.Synthesis.trace = true })

(* Satellite 3 regression: two builders assembling the same graph with
   edges inserted in opposite orders are the same instance and must land
   on the same cache entry. *)
let diamond_edges =
  [
    { Dfg.Graph.src = 0; dst = 2; delay = 0; size = 0 };
    { Dfg.Graph.src = 1; dst = 2; delay = 0; size = 0 };
    { Dfg.Graph.src = 2; dst = 3; delay = 0; size = 0 };
    { Dfg.Graph.src = 2; dst = 4; delay = 0; size = 0 };
  ]

let diamond edges =
  Dfg.Graph.of_edges
    ~names:[| "v1"; "v2"; "v3"; "v4"; "v5" |]
    ~ops:[| "mul"; "mul"; "add"; "add"; "sub" |]
    edges

let test_digest_edge_order_canonical () =
  let g_fwd = diamond diamond_edges in
  let g_rev = diamond (List.rev diamond_edges) in
  let tbl = table_for ~seed:12 g_fwd in
  let req g = Core.Synthesis.request ~algorithm:Core.Synthesis.Repeat ~deadline:10 g tbl in
  Alcotest.(check string)
    "edge insertion order canonicalized"
    (Serve.Cache.digest (req g_fwd))
    (Serve.Cache.digest (req g_rev));
  (* sanity: the two builds really are the same instance to the solvers *)
  Alcotest.(check bool)
    "fresh solves agree" true
    (Core.Synthesis.solve (req g_fwd) = Core.Synthesis.solve (req g_rev));
  let cache = Serve.Cache.create ~entries:8 () in
  let hits0 = counter "serve.cache.hit" in
  ignore (Serve.Cache.solve cache (req g_fwd));
  let resp = Serve.Cache.solve cache (req g_rev) in
  Alcotest.(check int) "second build hits" (hits0 + 1) (counter "serve.cache.hit");
  Alcotest.(check bool)
    "cached response equals fresh" true
    (resp = Core.Synthesis.solve (req g_fwd))

(* --- cache ------------------------------------------------------------- *)

let test_cached_response_byte_identical () =
  let req = request ~validate:true (instance ~seed:6) in
  let cache = Serve.Cache.create ~entries:4 () in
  let fresh = Serve.Cache.solve cache req in
  let cached = Serve.Cache.solve cache req in
  Alcotest.(check bool) "structurally identical" true (fresh = cached);
  Alcotest.(check string)
    "byte-identical on the wire"
    (Serve.Jsonl.response_to_string ~id:(Obs.Json.Int 1) fresh)
    (Serve.Jsonl.response_to_string ~id:(Obs.Json.Int 1) cached)

let test_cache_hit_miss_counters () =
  let cache = Serve.Cache.create ~entries:4 () in
  let req = request (instance ~seed:7) in
  let hits0 = counter "serve.cache.hit" and misses0 = counter "serve.cache.miss" in
  ignore (Serve.Cache.solve cache req);
  ignore (Serve.Cache.solve cache req);
  ignore (Serve.Cache.solve cache req);
  Alcotest.(check int) "one miss" (misses0 + 1) (counter "serve.cache.miss");
  Alcotest.(check int) "two hits" (hits0 + 2) (counter "serve.cache.hit");
  Alcotest.(check int) "one entry" 1 (Serve.Cache.length cache)

let test_cache_lru_eviction () =
  (* one shard: eviction order below is the global LRU the test scripts;
     with more shards LRU is per-shard (covered by the shard tests) *)
  let cache = Serve.Cache.create ~entries:2 ~shards:1 () in
  Alcotest.(check int) "capacity" 2 (Serve.Cache.capacity cache);
  Alcotest.(check int) "one shard" 1 (Serve.Cache.shard_count cache);
  let r1 = request (instance ~seed:8) in
  let r2 = request (instance ~seed:9) in
  let r3 = request (instance ~seed:10) in
  let evict0 = counter "serve.cache.evict" in
  ignore (Serve.Cache.solve cache r1);
  ignore (Serve.Cache.solve cache r2);
  ignore (Serve.Cache.solve cache r1) (* bump r1: r2 becomes the LRU *);
  ignore (Serve.Cache.solve cache r3);
  Alcotest.(check int) "one eviction" (evict0 + 1) (counter "serve.cache.evict");
  Alcotest.(check int) "still full" 2 (Serve.Cache.length cache);
  Alcotest.(check bool) "r1 survived (recently used)" true
    (Option.is_some (Serve.Cache.find cache r1));
  Alcotest.(check bool) "r2 evicted" false
    (Option.is_some (Serve.Cache.find cache r2));
  Serve.Cache.clear cache;
  Alcotest.(check int) "cleared" 0 (Serve.Cache.length cache)

let test_cache_skips_timeout () =
  let cache = Serve.Cache.create ~entries:4 () in
  let req = request ~budget_ms:0 (instance ~seed:11) in
  let resp = Serve.Cache.solve cache req in
  Alcotest.(check bool) "timed out" true
    (resp.Core.Synthesis.status = Core.Synthesis.Timeout);
  Alcotest.(check int) "not cached" 0 (Serve.Cache.length cache)

let test_entries_from_env () =
  let parse v =
    Serve.Cache.entries_from_env
      ~getenv:(fun _ -> v) ()
  in
  Alcotest.(check int) "unset" Serve.Cache.default_entries (parse None);
  Alcotest.(check int) "empty" Serve.Cache.default_entries (parse (Some ""));
  (* garbage falls back to the default too, but now warns on stderr
     (mirrors Par.Pool.domains_from_env's documented edge cases) *)
  Alcotest.(check int) "junk" Serve.Cache.default_entries (parse (Some "junk"));
  Alcotest.(check int) "trimmed" 7 (parse (Some " 7 "));
  Alcotest.(check int) "zero clamps to 1" 1 (parse (Some "0"));
  Alcotest.(check int) "negative clamps to 1" 1 (parse (Some "-3"))

let test_shards_from_env () =
  let parse v = Serve.Cache.shards_from_env ~getenv:(fun _ -> v) () in
  Alcotest.(check int) "unset" Serve.Cache.default_shards (parse None);
  Alcotest.(check int) "junk warns, default" Serve.Cache.default_shards
    (parse (Some "garbage"));
  Alcotest.(check int) "value" 16 (parse (Some "16"));
  Alcotest.(check int) "zero clamps to 1" 1 (parse (Some "0"));
  Alcotest.(check int) "cap" Serve.Cache.max_shards (parse (Some "9999"))

(* --- sharding ----------------------------------------------------------- *)

let test_shard_routing () =
  let cache = Serve.Cache.create ~entries:256 ~shards:8 () in
  Alcotest.(check int) "shard count" 8 (Serve.Cache.shard_count cache);
  (* routing is a pure function of the digest prefix *)
  Alcotest.(check int) "digest 00.. -> 0" 0
    (Serve.Cache.shard_of_digest cache ("00" ^ String.make 30 'a'));
  Alcotest.(check int) "digest ff.. -> 255 mod 8" (255 mod 8)
    (Serve.Cache.shard_of_digest cache ("ff" ^ String.make 30 'a'));
  (* entries land on the shard their digest names *)
  let reqs = List.init 12 (fun i -> request (instance ~seed:(100 + i))) in
  List.iter (fun r -> ignore (Serve.Cache.solve cache r)) reqs;
  Alcotest.(check int) "all stored" 12 (Serve.Cache.length cache);
  let lengths = Serve.Cache.shard_lengths cache in
  List.iter
    (fun r ->
      let s = Serve.Cache.shard_of_digest cache (Serve.Cache.digest r) in
      Alcotest.(check bool)
        (Printf.sprintf "shard %d non-empty" s)
        true (lengths.(s) > 0))
    reqs;
  (* capacity-1 caches collapse to one shard regardless of the default *)
  Alcotest.(check int) "capacity 1 -> 1 shard" 1
    (Serve.Cache.shard_count (Serve.Cache.create ~entries:1 ()))

(* Satellite: sharded == single-shard on any eviction-free request
   sequence — same hit/miss counts and byte-identical response lines. *)
let qcheck_sharded_matches_single_shard =
  QCheck.Test.make ~count:15 ~name:"sharded cache == single-shard cache"
    QCheck.(pair (int_bound 1000) (list_of_size Gen.(1 -- 20) (int_bound 5)))
    (fun (seed, picks) ->
      (* a small pool of distinct requests, replayed in a random order
         with repetitions: plenty of hits and misses, no evictions
         (capacity far above the distinct-request count) *)
      let base =
        Array.init 6 (fun i -> request (instance ~seed:(seed + (13 * i))))
      in
      let sequence = List.map (fun i -> base.(i)) picks in
      let play cache =
        let h0 = counter "serve.cache.hit" and m0 = counter "serve.cache.miss" in
        let lines =
          List.map
            (fun req ->
              Serve.Jsonl.response_to_string ~id:(Obs.Json.Int 0)
                (Serve.Cache.solve cache req))
            sequence
        in
        (lines, counter "serve.cache.hit" - h0, counter "serve.cache.miss" - m0)
      in
      let sharded = play (Serve.Cache.create ~entries:64 ~shards:8 ()) in
      let single = play (Serve.Cache.create ~entries:64 ~shards:1 ()) in
      sharded = single)

(* Satellite: concurrent hammer — 4 domains solving overlapping digests
   through one sharded cache must lose no stores, and the aggregate
   counters must account for every lookup. *)
let test_shard_concurrent_hammer () =
  let cache = Serve.Cache.create ~entries:256 ~shards:8 () in
  let reqs = Array.init 8 (fun i -> request (instance ~seed:(300 + i))) in
  Array.iter
    (fun (r : Core.Synthesis.request) ->
      Dfg.Graph.preheat r.Core.Synthesis.graph;
      Fulib.Table.preheat r.Core.Synthesis.table)
    reqs;
  let expected = Array.map Core.Synthesis.solve reqs in
  let rounds = 6 in
  let h0 = counter "serve.cache.hit" and m0 = counter "serve.cache.miss" in
  Par.Pool.with_pool ~domains:4 (fun pool ->
      (* every task sweeps the whole request set, so every digest is
         hammered from every domain; results must match the fresh solves *)
      let results =
        Par.Pool.map_array pool
          (fun offset ->
            Array.init (Array.length reqs) (fun i ->
                let r = reqs.((i + offset) mod Array.length reqs) in
                Serve.Cache.solve cache r))
          (Array.init (4 * rounds) (fun i -> i))
      in
      Array.iteri
        (fun t task_results ->
          Array.iteri
            (fun i resp ->
              let want = expected.((i + t) mod Array.length reqs) in
              if resp <> want then
                Alcotest.failf "task %d lookup %d returned a wrong response" t i)
            task_results)
        results);
  (* no lost stores: every distinct request is resident afterwards *)
  Alcotest.(check int) "all entries resident" (Array.length reqs)
    (Serve.Cache.length cache);
  Array.iter
    (fun r ->
      Alcotest.(check bool) "entry findable" true
        (Option.is_some (Serve.Cache.find cache r)))
    reqs;
  (* aggregate counters consistent: every lookup was either a hit or a
     miss (the re-find sweep above adds one lookup per request), and the
     per-shard cells sum to at least the aggregate deltas *)
  let hits = counter "serve.cache.hit" - h0
  and misses = counter "serve.cache.miss" - m0 in
  Alcotest.(check int) "hits + misses == lookups"
    ((4 * rounds * Array.length reqs) + Array.length reqs)
    (hits + misses);
  let shard_sum kind =
    let sum = ref 0 in
    for s = 0 to Serve.Cache.shard_count cache - 1 do
      sum :=
        !sum + counter (Printf.sprintf "serve.cache.shard%d.%s" s kind)
    done;
    !sum
  in
  Alcotest.(check bool) "per-shard hits cover the aggregate delta" true
    (shard_sum "hit" >= hits);
  Alcotest.(check bool) "per-shard misses cover the aggregate delta" true
    (shard_sum "miss" >= misses)

(* --- server ------------------------------------------------------------ *)

let test_queue_bounds_and_order () =
  Par.Pool.with_pool ~domains:1 @@ fun pool ->
  let server = Serve.Server.create ~pool ~queue_capacity:2 () in
  let r1 = request (instance ~seed:12) in
  let r2 = request (instance ~seed:13) in
  Serve.Server.submit server r1;
  Serve.Server.submit server r2;
  Alcotest.(check int) "pending" 2 (Serve.Server.pending server);
  Alcotest.(check bool) "full" false (Serve.Server.try_submit server r1);
  Alcotest.check_raises "submit raises" Serve.Server.Queue_full (fun () ->
      Serve.Server.submit server r1);
  let responses = Serve.Server.drain server in
  Alcotest.(check int) "drained" 0 (Serve.Server.pending server);
  Alcotest.(check bool)
    "submission order" true
    (responses = [ Core.Synthesis.solve r1; Core.Synthesis.solve r2 ])

let test_solve_batch_waves () =
  Par.Pool.with_pool ~domains:2 @@ fun pool ->
  let server = Serve.Server.create ~pool ~queue_capacity:3 () in
  let reqs = List.init 8 (fun i -> request (instance ~seed:(20 + i))) in
  let responses = Serve.Server.solve_batch server reqs in
  Alcotest.(check int) "all answered" 8 (List.length responses);
  Alcotest.(check bool)
    "matches sequential" true
    (responses = List.map Core.Synthesis.solve reqs)

let test_poisoned_request_isolated () =
  (* deadline 0 with an over-budget neighbour: the batch must come back
     [Ok; Timeout; Infeasible; Ok] with no exception escaping the pool *)
  Par.Pool.with_pool ~domains:2 @@ fun pool ->
  let server = Serve.Server.create ~pool () in
  let ok1 = request (instance ~seed:30) in
  let timeout = request ~budget_ms:0 (instance ~seed:31) in
  let g, tbl = instance ~seed:32 in
  let infeasible =
    Core.Synthesis.request ~algorithm:Core.Synthesis.Repeat ~deadline:1 g tbl
  in
  let ok2 = request (instance ~seed:33) in
  let statuses =
    List.map
      (fun r -> r.Core.Synthesis.status)
      (Serve.Server.solve_batch server [ ok1; timeout; infeasible; ok2 ])
  in
  Alcotest.(check bool)
    "ok / timeout / infeasible / ok" true
    (statuses
    = Core.Synthesis.[ Ok; Timeout; Infeasible; Ok ])

(* --- qcheck differentials ---------------------------------------------- *)

let qcheck_server_matches_sequential =
  QCheck.Test.make ~count:15 ~name:"server batch == sequential solves"
    QCheck.(pair (int_bound 1000) (int_bound 6))
    (fun (seed, extra) ->
      let reqs =
        List.init (2 + extra) (fun i ->
            request (instance ~seed:(seed + (17 * i))))
      in
      Par.Pool.with_pool ~domains:2 @@ fun pool ->
      let server = Serve.Server.create ~pool ~queue_capacity:4 () in
      Serve.Server.solve_batch server reqs = List.map Core.Synthesis.solve reqs)

let qcheck_cache_parity =
  QCheck.Test.make ~count:15 ~name:"cache on/off parity (with duplicates)"
    (QCheck.int_bound 1000)
    (fun seed ->
      let base = List.init 3 (fun i -> request (instance ~seed:(seed + i))) in
      let reqs = base @ base @ List.rev base in
      Par.Pool.with_pool ~domains:1 @@ fun pool ->
      let with_cache =
        Serve.Server.create ~pool ~cache:(Serve.Cache.create ~entries:64 ()) ()
      in
      let without_cache =
        Serve.Server.create ~pool ~cache:(Serve.Cache.create ~entries:1 ()) ()
      in
      Serve.Server.solve_batch with_cache reqs
      = Serve.Server.solve_batch without_cache reqs)

let qcheck_domain_parity =
  QCheck.Test.make ~count:10 ~name:"domains 1 vs 4 parity"
    (QCheck.int_bound 1000)
    (fun seed ->
      let reqs = List.init 6 (fun i -> request (instance ~seed:(seed + (7 * i)))) in
      let solve_at domains =
        Par.Pool.with_pool ~domains @@ fun pool ->
        Serve.Server.solve_batch (Serve.Server.create ~pool ()) reqs
      in
      solve_at 1 = solve_at 4)

let qcheck_timeout_neighbours_survive =
  QCheck.Test.make ~count:10 ~name:"zero-budget request times out alone"
    (QCheck.int_bound 1000)
    (fun seed ->
      let ok1 = request (instance ~seed) in
      let huge = request ~budget_ms:0 (instance ~seed:(seed + 1)) in
      let ok2 = request (instance ~seed:(seed + 2)) in
      Par.Pool.with_pool ~domains:2 @@ fun pool ->
      let server = Serve.Server.create ~pool () in
      match Serve.Server.solve_batch server [ ok1; huge; ok2 ] with
      | [ a; b; c ] ->
          a.Core.Synthesis.status = Core.Synthesis.Ok
          && b.Core.Synthesis.status = Core.Synthesis.Timeout
          && c.Core.Synthesis.status = Core.Synthesis.Ok
      | _ -> false)

(* --- jsonl ------------------------------------------------------------- *)

let inline_request_line =
  {|{"id": "inline-1", "graph": {"nodes": [{"name": "a", "op": "mul"}, {"name": "b", "op": "add"}], "edges": [[0, 1]]}, "table": {"types": ["P1", "P2"], "time": [[1, 2], [1, 3]], "cost": [[9, 4], [8, 3]]}, "deadline": 6, "algorithm": "repeat", "validate": true}|}

let test_jsonl_inline_round_trip () =
  match Serve.Jsonl.request_of_string ~line:1 inline_request_line with
  | Error msg -> Alcotest.failf "parse failed: %s" msg
  | Ok item ->
      Alcotest.(check bool) "id echoed" true
        (item.Serve.Jsonl.id = Obs.Json.String "inline-1");
      let req = item.Serve.Jsonl.request in
      Alcotest.(check int) "deadline" 6 req.Core.Synthesis.deadline;
      Alcotest.(check bool) "validate" true req.Core.Synthesis.validate;
      Alcotest.(check int) "nodes" 2
        (Dfg.Graph.num_nodes req.Core.Synthesis.graph);
      let resp = Core.Synthesis.solve req in
      let line = Serve.Jsonl.response_to_string ~id:item.Serve.Jsonl.id resp in
      let json = Obs.Json.parse_exn line in
      Alcotest.(check (option string))
        "status ok" (Some "ok")
        (Option.bind (Obs.Json.member "status" json) Obs.Json.to_string_opt);
      Alcotest.(check (option string))
        "id round-trips" (Some "inline-1")
        (Option.bind (Obs.Json.member "id" json) Obs.Json.to_string_opt)

(* the rtl knob: parsed, digest-separated, and rendered as an "rtl"
   response object with artifact digests and interconnect stats *)
let test_jsonl_rtl_block () =
  let line_of rtl =
    Printf.sprintf
      {|{"id": "rtl-1", "graph": {"nodes": [{"name": "a", "op": "mul"}, {"name": "b", "op": "add"}], "edges": [[0, 1]]}, "table": {"types": ["P1", "P2"], "time": [[4, 8], [4, 8]], "cost": [[9, 4], [8, 3]]}, "deadline": 16%s}|}
      (if rtl then {|, "rtl": true|} else "")
  in
  let parse l =
    match Serve.Jsonl.request_of_string ~line:1 l with
    | Ok item -> item
    | Error msg -> Alcotest.failf "parse failed: %s" msg
  in
  let lowered = parse (line_of true) and plain = parse (line_of false) in
  Alcotest.(check bool) "rtl knob parsed" true
    lowered.Serve.Jsonl.request.Core.Synthesis.rtl;
  Alcotest.(check bool) "knob separates cache digests" false
    (Serve.Cache.digest lowered.Serve.Jsonl.request
    = Serve.Cache.digest plain.Serve.Jsonl.request);
  let render item =
    Obs.Json.parse_exn
      (Serve.Jsonl.response_to_string ~id:item.Serve.Jsonl.id
         (Core.Synthesis.solve item.Serve.Jsonl.request))
  in
  Alcotest.(check bool) "plain response has no rtl block" true
    (Obs.Json.member "rtl" (render plain) = None);
  match Obs.Json.member "rtl" (render lowered) with
  | None -> Alcotest.fail "lowered response has no rtl block"
  | Some rtl ->
      (match Obs.Json.member "module_digest" rtl with
      | Some (Obs.Json.String d) ->
          Alcotest.(check int) "md5 hex digest" 32 (String.length d)
      | _ -> Alcotest.fail "rtl block has no module_digest");
      (match
         ( Obs.Json.member "fu_instances" rtl,
           Obs.Json.member "registers" rtl )
       with
      | Some (Obs.Json.Int f), Some (Obs.Json.Int r) ->
          Alcotest.(check bool) "stats populated" true (f >= 1 && r >= 0)
      | _ -> Alcotest.fail "rtl block lacks interconnect stats");
      (* mul and add are both mappable: no unsupported entries *)
      (match Obs.Json.member "unsupported" rtl with
      | Some (Obs.Json.List []) -> ()
      | _ -> Alcotest.fail "expected an empty unsupported list")

let test_jsonl_parse_errors () =
  let expect_error line s =
    match Serve.Jsonl.request_of_string ~line s with
    | Ok _ -> Alcotest.failf "expected an error for %s" s
    | Error _ -> ()
  in
  expect_error 1 "{not json";
  expect_error 2 {|{"deadline": 5}|};
  expect_error 3 {|{"benchmark": "diffeq", "deadline": 5}|} (* no lookup *);
  expect_error 4
    {|{"graph": {"nodes": [{"name": "a"}], "edges": []}, "table": {"types": ["P1"], "time": [[1]], "cost": [[1]]}}|}
    (* no deadline *)

let lookup name ~seed =
  Option.map
    (fun g -> (g, table_for ~seed g))
    (List.assoc_opt name (Workloads.Filters.extended ()))

(* deadline / deadline_factor / period are validated before dispatch: a
   bad value is a per-line error that names the offending field *)
let test_jsonl_field_validation () =
  let error_mentions field s =
    match Serve.Jsonl.line_of_string ~lookup ~line:1 s with
    | Ok _ -> Alcotest.failf "expected an error for %s" s
    | Error msg ->
        let contains hay needle =
          let nl = String.length needle and hl = String.length hay in
          let rec go i =
            i + nl <= hl && (String.sub hay i nl = needle || go (i + 1))
          in
          go 0
        in
        if not (contains msg field) then
          Alcotest.failf "error for %s does not name %S: %s" s field msg
  in
  error_mentions "deadline" {|{"benchmark": "diffeq", "deadline": 0}|};
  error_mentions "deadline" {|{"benchmark": "diffeq", "deadline": -4}|};
  error_mentions "deadline" {|{"benchmark": "diffeq", "deadline": 2.5}|};
  error_mentions "deadline" {|{"benchmark": "diffeq", "deadline": "soon"}|};
  error_mentions "deadline_factor"
    {|{"benchmark": "diffeq", "deadline_factor": 0}|};
  error_mentions "deadline_factor"
    {|{"benchmark": "diffeq", "deadline_factor": -1.5}|};
  error_mentions "deadline_factor"
    {|{"benchmark": "diffeq", "deadline_factor": "fast"}|};
  error_mentions "period"
    {|{"cmd": "admit", "benchmark": "diffeq", "deadline": 40}|};
  error_mentions "period"
    {|{"cmd": "admit", "benchmark": "diffeq", "deadline": 40, "period": 0}|};
  error_mentions "period"
    {|{"cmd": "admit", "benchmark": "diffeq", "deadline": 40, "period": 1.5}|};
  error_mentions "cmd" {|{"cmd": "evict", "task": "t1"}|};
  (* a release with no task key falls back to the line's id *)
  (match Serve.Jsonl.line_of_string ~lookup ~line:9 {|{"cmd": "release"}|} with
  | Ok (Serve.Jsonl.Release r) ->
      Alcotest.(check string) "task defaults to the line id" "9" r.task
  | Ok _ -> Alcotest.fail "bare release parsed as something else"
  | Error e -> Alcotest.failf "bare release rejected: %s" e);
  (* valid lines of each kind still parse *)
  (match
     Serve.Jsonl.line_of_string ~lookup ~line:1
       {|{"cmd": "admit", "benchmark": "diffeq", "deadline": 40, "period": 64, "task": "t1"}|}
   with
  | Ok (Serve.Jsonl.Admit a) ->
      Alcotest.(check string) "task key" "t1" a.task;
      Alcotest.(check int) "period" 64 a.periodic.Core.Synthesis.period
  | Ok _ -> Alcotest.fail "admit line parsed as something else"
  | Error e -> Alcotest.failf "admit line rejected: %s" e);
  match
    Serve.Jsonl.line_of_string ~lookup ~line:1 {|{"cmd": "release", "task": "t1"}|}
  with
  | Ok (Serve.Jsonl.Release r) -> Alcotest.(check string) "task key" "t1" r.task
  | Ok _ -> Alcotest.fail "release line parsed as something else"
  | Error e -> Alcotest.failf "release line rejected: %s" e

(* inline two-node chain: deterministic instance for admission lines *)
let inline_fields =
  {|"graph": {"nodes": [{"name": "a", "op": "mul"}, {"name": "b", "op": "add"}], "edges": [[0, 1]]}, "table": {"types": ["P1", "P2"], "time": [[4, 8], [4, 8]], "cost": [[9, 4], [8, 3]]}, "deadline": 16|}

let test_jsonl_serve_admission () =
  let lines =
    [
      (* light: 8+8 work over period 64 on the cheap units *)
      Printf.sprintf {|{"cmd": "admit", "id": "a1", "task": "t1", %s, "period": 64}|}
        inline_fields;
      (* plain solve rides along in the same batch *)
      Printf.sprintf {|{"id": "s1", %s}|} inline_fields;
      (* a serial chain cannot repeat every step: rejected with witness *)
      Printf.sprintf {|{"cmd": "admit", "id": "a2", "task": "t2", %s, "period": 1}|}
        inline_fields;
      {|{"cmd": "release", "id": "r1", "task": "t1"}|};
      {|{"cmd": "release", "id": "r2", "task": "t1"}|};
    ]
  in
  let dir = Filename.temp_file "serve_admit" ".d" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let in_path = Filename.concat dir "in.jsonl" in
  let out_path = Filename.concat dir "out.jsonl" in
  let oc = open_out in_path in
  List.iter (fun l -> output_string oc (l ^ "\n")) lines;
  close_out oc;
  Par.Pool.with_pool ~domains:2 (fun pool ->
      let server = Serve.Server.create ~pool () in
      let ic = open_in in_path and oc = open_out out_path in
      let served =
        Serve.Jsonl.serve ~lookup ~capacity:(Rt.Admission.Uniform 2) server
          ~input:ic ~output:oc
      in
      close_in ic;
      close_out oc;
      Alcotest.(check int) "every line answered" 5 served);
  let ic = open_in out_path in
  let rec read acc =
    match input_line ic with
    | l -> read (l :: acc)
    | exception End_of_file -> List.rev acc
  in
  let out = read [] in
  close_in ic;
  let json_field name l =
    Option.bind (Obs.Json.member name (Obs.Json.parse_exn l)) Obs.Json.to_string_opt
  in
  Alcotest.(check (list (option string)))
    "statuses in line order"
    [ Some "admitted"; Some "ok"; Some "rejected"; Some "released"; Some "error" ]
    (List.map (json_field "status") out);
  Alcotest.(check (option string))
    "rejection reason is the stable code" (Some "period_overrun")
    (json_field "reason" (List.nth out 2));
  (* the witness carries the numbers the checker re-derives *)
  (match Obs.Json.member "witness" (Obs.Json.parse_exn (List.nth out 2)) with
  | Some w -> (
      match (Obs.Json.member "min_period" w, Obs.Json.member "period" w) with
      | Some (Obs.Json.Int mp), Some (Obs.Json.Int p) ->
          Alcotest.(check bool) "witness inequality holds" true (mp > p)
      | _ -> Alcotest.fail "witness missing min_period/period")
  | None -> Alcotest.fail "rejected line has no witness");
  (* the double release names the unknown task *)
  (match json_field "error" (List.nth out 4) with
  | Some msg ->
      Alcotest.(check bool) "unknown-task error names it" true
        (String.length msg > 0)
  | None -> Alcotest.fail "double release should be an error line");
  Sys.remove in_path;
  Sys.remove out_path;
  Sys.rmdir dir

let test_jsonl_serve_channels () =
  let lines =
    [
      {|{"benchmark": "diffeq", "deadline_factor": 1.3}|};
      {|this is not json|};
      {|{"benchmark": "no-such-filter", "deadline": 9}|};
      "";
      {|{"id": 7, "benchmark": "volterra", "seed": 5, "deadline_factor": 1.2, "algorithm": "greedy"}|};
    ]
  in
  let dir = Filename.temp_file "serve" ".d" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let in_path = Filename.concat dir "in.jsonl" in
  let out_path = Filename.concat dir "out.jsonl" in
  let oc = open_out in_path in
  List.iter (fun l -> output_string oc (l ^ "\n")) lines;
  close_out oc;
  Par.Pool.with_pool ~domains:2 (fun pool ->
      let server = Serve.Server.create ~pool () in
      let ic = open_in in_path and oc = open_out out_path in
      let served =
        Serve.Jsonl.serve ~lookup server ~input:ic ~output:oc
      in
      close_in ic;
      close_out oc;
      Alcotest.(check int) "blank line skipped, rest answered" 4 served);
  let ic = open_in out_path in
  let rec read acc =
    match input_line ic with
    | l -> read (l :: acc)
    | exception End_of_file -> List.rev acc
  in
  let out = read [] in
  close_in ic;
  let status l =
    Option.bind
      (Obs.Json.member "status" (Obs.Json.parse_exn l))
      Obs.Json.to_string_opt
  in
  Alcotest.(check (list (option string)))
    "statuses in line order"
    [ Some "ok"; Some "error"; Some "error"; Some "ok" ]
    (List.map status out);
  (* default ids are 1-based input line numbers; explicit ids echo *)
  let id l = Obs.Json.member "id" (Obs.Json.parse_exn l) in
  Alcotest.(check bool) "line-number id" true
    (id (List.nth out 0) = Some (Obs.Json.Int 1));
  Alcotest.(check bool) "explicit id" true
    (id (List.nth out 3) = Some (Obs.Json.Int 7));
  Sys.remove in_path;
  Sys.remove out_path;
  Sys.rmdir dir

(* --- run --------------------------------------------------------------- *)

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "serve"
    [
      ( "digest",
        [
          Alcotest.test_case "deterministic" `Quick test_digest_deterministic;
          Alcotest.test_case "sensitivity" `Quick test_digest_sensitivity;
          Alcotest.test_case "edge order canonical" `Quick
            test_digest_edge_order_canonical;
        ] );
      ( "cache",
        [
          Alcotest.test_case "byte-identical replay" `Quick
            test_cached_response_byte_identical;
          Alcotest.test_case "hit/miss counters" `Quick
            test_cache_hit_miss_counters;
          Alcotest.test_case "lru eviction" `Quick test_cache_lru_eviction;
          Alcotest.test_case "timeout not cached" `Quick
            test_cache_skips_timeout;
          Alcotest.test_case "HETSCHED_CACHE_ENTRIES" `Quick
            test_entries_from_env;
          Alcotest.test_case "HETSCHED_CACHE_SHARDS" `Quick
            test_shards_from_env;
        ] );
      ( "shards",
        [
          Alcotest.test_case "digest-prefix routing" `Quick test_shard_routing;
          Alcotest.test_case "concurrent hammer, 4 domains" `Quick
            test_shard_concurrent_hammer;
        ]
        @ qsuite [ qcheck_sharded_matches_single_shard ] );
      ( "server",
        [
          Alcotest.test_case "queue bounds and order" `Quick
            test_queue_bounds_and_order;
          Alcotest.test_case "solve_batch waves" `Quick test_solve_batch_waves;
          Alcotest.test_case "poisoned request isolated" `Quick
            test_poisoned_request_isolated;
        ] );
      ( "differential",
        qsuite
          [
            qcheck_server_matches_sequential;
            qcheck_cache_parity;
            qcheck_domain_parity;
            qcheck_timeout_neighbours_survive;
          ] );
      ( "jsonl",
        [
          Alcotest.test_case "inline round trip" `Quick
            test_jsonl_inline_round_trip;
          Alcotest.test_case "rtl knob and response block" `Quick
            test_jsonl_rtl_block;
          Alcotest.test_case "parse errors" `Quick test_jsonl_parse_errors;
          Alcotest.test_case "field validation names the field" `Quick
            test_jsonl_field_validation;
          Alcotest.test_case "serve channels" `Quick test_jsonl_serve_channels;
          Alcotest.test_case "admission round trip" `Quick
            test_jsonl_serve_admission;
        ] );
    ]
