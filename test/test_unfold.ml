open Helpers

let correlator () =
  graph_with_delays 3 [ (0, 1, 0); (1, 2, 0); (2, 0, 2) ]

let test_node_and_edge_counts () =
  let g = correlator () in
  let u = Dfg.Unfold.unfold g ~factor:3 in
  Alcotest.(check int) "3x nodes" 9 (Dfg.Graph.num_nodes u);
  Alcotest.(check int) "3x edges" 9 (Dfg.Graph.num_edges u);
  Alcotest.(check string) "copy naming" "v0#0" (Dfg.Graph.name u 0);
  Alcotest.(check string) "copy naming" "v1#2" (Dfg.Graph.name u 5)

let test_factor_one_identity () =
  let g = correlator () in
  let u = Dfg.Unfold.unfold g ~factor:1 in
  Alcotest.(check int) "same nodes" 3 (Dfg.Graph.num_nodes u);
  let delays gr =
    List.sort compare
      (List.map (fun { Dfg.Graph.delay; _ } -> delay) (Dfg.Graph.edges gr))
  in
  Alcotest.(check (list int)) "same delays" (delays g) (delays u)

let test_invalid_factor () =
  Alcotest.check_raises "factor 0" (Invalid_argument "Unfold.unfold: factor < 1")
    (fun () -> ignore (Dfg.Unfold.unfold (correlator ()) ~factor:0))

let total_delay gr =
  List.fold_left (fun acc { Dfg.Graph.delay; _ } -> acc + delay) 0
    (Dfg.Graph.edges gr)

let test_total_delay_preserved () =
  (* per original edge with delay d, the f copies carry d delays in total *)
  let g = correlator () in
  for f = 1 to 5 do
    let u = Dfg.Unfold.unfold g ~factor:f in
    Alcotest.(check int)
      (Printf.sprintf "factor %d" f)
      (total_delay g) (total_delay u)
  done

let test_unfolded_graph_valid_and_acyclic_portion () =
  (* constructing via Graph.of_edges already validates zero-delay
     acyclicity; exercise a few benchmarks *)
  List.iter
    (fun (name, g) ->
      for f = 2 to 3 do
        let u = Dfg.Unfold.unfold g ~factor:f in
        Alcotest.(check int)
          (Printf.sprintf "%s x%d node count" name f)
          (f * Dfg.Graph.num_nodes g)
          (Dfg.Graph.num_nodes u)
      done)
    (Workloads.Filters.all ())

let test_cycle_period_per_iteration_improves () =
  (* correlator with unit times: period 3 for 1 iteration; unfolded by 2,
     the super-iteration runs 2 iterations in less than 2x the time *)
  let g = correlator () in
  let time _ = 1 in
  let p1 = Dfg.Cyclic.cycle_period g ~time in
  let u = Dfg.Unfold.unfold g ~factor:2 in
  let p2 = Dfg.Cyclic.cycle_period u ~time in
  Alcotest.(check bool)
    (Printf.sprintf "p2=%d <= 2*p1=%d" p2 (2 * p1))
    true
    (p2 <= 2 * p1);
  (* and the per-iteration period is bounded below by the iteration bound *)
  let bound = Dfg.Cyclic.iteration_bound g ~time in
  Alcotest.(check bool) "above iteration bound" true
    (float_of_int p2 /. 2.0 >= bound -. 1e-6)

let test_unfold_then_assign () =
  (* the unfolded DFG is a normal assignment instance: project the table
     and synthesize *)
  let g = Workloads.Filters.lattice ~stages:2 in
  let rng = Workloads.Prng.create 5 in
  let tbl = Workloads.Tables.for_graph rng ~library:lib3 g in
  let f = 2 in
  let u = Dfg.Unfold.unfold g ~factor:f in
  let origin = Array.init (Dfg.Graph.num_nodes g * f) (fun i -> i / f) in
  let utbl = Fulib.Table.project tbl ~origin in
  let deadline = Assign.Assignment.min_makespan u utbl + 4 in
  match Assign.Dfg_assign.repeat u utbl ~deadline with
  | None -> Alcotest.fail "unfolded instance feasible"
  | Some a ->
      Alcotest.(check bool) "feasible" true
        (Assign.Assignment.is_feasible u utbl a ~deadline)

let test_inter_iteration_edge_wraps () =
  (* edge with delay 1 unfolded by 2: copy 0 -> copy 1 intra (delay 0),
     copy 1 -> copy 0 with delay 1 *)
  let g = graph_with_delays 2 [ (0, 1, 1) ] in
  let u = Dfg.Unfold.unfold g ~factor:2 in
  let find src dst =
    List.find_map
      (fun { Dfg.Graph.src = s; dst = d; delay; _ } ->
        if s = src && d = dst then Some delay else None)
      (Dfg.Graph.edges u)
  in
  (* node ids: v0#0=0 v0#1=1 v1#0=2 v1#1=3 *)
  Alcotest.(check (option int)) "v0#0 -> v1#1 intra" (Some 0) (find 0 3);
  Alcotest.(check (option int)) "v0#1 -> v1#0 wraps" (Some 1) (find 1 2)

let () =
  Alcotest.run "dfg.unfold"
    [
      ( "unfold",
        [
          quick "counts and naming" test_node_and_edge_counts;
          quick "factor 1 is identity" test_factor_one_identity;
          quick "invalid factor" test_invalid_factor;
          quick "total delay preserved" test_total_delay_preserved;
          quick "benchmarks unfold cleanly" test_unfolded_graph_valid_and_acyclic_portion;
          quick "per-iteration period improves" test_cycle_period_per_iteration_improves;
          quick "unfold then assign" test_unfold_then_assign;
          quick "delay wrap-around" test_inter_iteration_edge_wraps;
        ] );
    ]
