(* Tests for the core-level extensions: Pareto frontiers, CSV export, and
   the DVS table model behind the library-size study. *)

open Helpers

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let small_setup () =
  let g = graph 4 [ (0, 1); (0, 2); (2, 3) ] in
  let tbl =
    table lib3
      [
        ([ 1; 2; 3 ], [ 10; 6; 2 ]);
        ([ 1; 2; 4 ], [ 12; 7; 3 ]);
        ([ 2; 3; 5 ], [ 9; 4; 1 ]);
        ([ 1; 3; 4 ], [ 8; 5; 2 ]);
      ]
  in
  (g, tbl)

(* --- Frontier ---------------------------------------------------------- *)

let test_frontier_staircase () =
  let g, tbl = small_setup () in
  let points =
    Core.Frontier.trace ~algorithm:Core.Synthesis.Exact g tbl ~max_deadline:16
  in
  Alcotest.(check bool) "non-empty" true (points <> []);
  let rec check = function
    | a :: (b :: _ as rest) ->
        Alcotest.(check bool) "deadlines increase" true
          (a.Core.Frontier.deadline < b.Core.Frontier.deadline);
        Alcotest.(check bool) "costs decrease" true
          (a.Core.Frontier.cost > b.Core.Frontier.cost);
        check rest
    | _ -> ()
  in
  check points;
  (* first point = minimum feasible deadline; last = unconstrained optimum *)
  (match points with
  | first :: _ ->
      Alcotest.(check int) "starts at Tmin"
        (Core.Synthesis.min_deadline g tbl)
        first.Core.Frontier.deadline
  | [] -> ());
  let last = List.nth points (List.length points - 1) in
  let cheapest =
    Assign.Assignment.total_cost tbl (Assign.Assignment.all_cheapest tbl)
  in
  Alcotest.(check int) "ends at the unconstrained optimum" cheapest
    last.Core.Frontier.cost

let test_frontier_infeasible_max () =
  let g, tbl = small_setup () in
  Alcotest.(check (list (pair int int))) "empty below Tmin" []
    (List.map
       (fun p -> (p.Core.Frontier.deadline, p.Core.Frontier.cost))
       (Core.Frontier.trace g tbl
          ~max_deadline:(Core.Synthesis.min_deadline g tbl - 1)))

let test_frontier_heuristic_monotone () =
  (* even with a heuristic, the reported staircase must be monotone by
     construction *)
  let g = Workloads.Filters.rls_laguerre () in
  let rng = Workloads.Prng.create 57 in
  let tbl = Workloads.Tables.for_graph rng ~library:lib3 g in
  let tmin = Core.Synthesis.min_deadline g tbl in
  let points = Core.Frontier.trace g tbl ~max_deadline:(tmin * 2) in
  let costs = List.map (fun p -> p.Core.Frontier.cost) points in
  let rec strictly_decreasing = function
    | a :: (b :: _ as t) -> a > b && strictly_decreasing t
    | _ -> true
  in
  Alcotest.(check bool) "strict staircase" true (strictly_decreasing costs);
  Alcotest.(check bool) "rendering works" true
    (contains (Core.Frontier.to_string points) "frontier")

(* --- CSV --------------------------------------------------------------- *)

let test_csv_escaping () =
  let out =
    Core.Csv.render ~header:[ "a"; "b" ]
      [ [ "plain"; "with,comma" ]; [ "with\"quote"; "with\nnewline" ] ]
  in
  Alcotest.(check bool) "comma quoted" true (contains out "\"with,comma\"");
  Alcotest.(check bool) "quote doubled" true (contains out "\"with\"\"quote\"");
  Alcotest.(check bool) "newline quoted" true (contains out "\"with\nnewline\"");
  Alcotest.(check bool) "plain untouched" true (contains out "plain,")

(* Naive quote-aware CSV parser: the round-trip oracle for Csv.render.
   Splits records on the locked "\n" convention, honours quoted fields and
   doubled quotes, preserves field bytes otherwise. *)
let naive_parse csv =
  let records = ref [] and fields = ref [] and buf = Buffer.create 16 in
  let flush_field () =
    fields := Buffer.contents buf :: !fields;
    Buffer.clear buf
  in
  let flush_record () =
    flush_field ();
    records := List.rev !fields :: !records;
    fields := []
  in
  let n = String.length csv in
  let rec go i ~quoted =
    if i >= n then ()
    else
      let c = csv.[i] in
      if quoted then
        if c = '"' then
          if i + 1 < n && csv.[i + 1] = '"' then begin
            Buffer.add_char buf '"';
            go (i + 2) ~quoted:true
          end
          else go (i + 1) ~quoted:false
        else begin
          Buffer.add_char buf c;
          go (i + 1) ~quoted:true
        end
      else
        match c with
        | '"' -> go (i + 1) ~quoted:true
        | ',' ->
            flush_field ();
            go (i + 1) ~quoted:false
        | '\n' ->
            flush_record ();
            go (i + 1) ~quoted:false
        | c ->
            Buffer.add_char buf c;
            go (i + 1) ~quoted:false
  in
  go 0 ~quoted:false;
  if Buffer.length buf > 0 || !fields <> [] then flush_record ();
  List.rev !records

let test_csv_round_trip () =
  (* the locked line-ending convention: records separated by a single LF
     (never CRLF), one trailing newline *)
  Alcotest.(check string) "LF line endings, trailing newline" "a,b\n1,2\n"
    (Core.Csv.render ~header:[ "a"; "b" ] [ [ "1"; "2" ] ]);
  let rows =
    [
      [ "plain"; "with,comma"; "with\"quote" ];
      [ "cr\rlf\ncrlf\r\n end"; "  leading and trailing  "; "" ];
      [ "\"quoted-looking\""; "a,b\"c\nd"; "tab\tstays" ];
    ]
  in
  let header = [ "h1"; "h2"; "h3" ] in
  match naive_parse (Core.Csv.render ~header rows) with
  | parsed_header :: parsed_rows ->
      Alcotest.(check (list string)) "header survives" header parsed_header;
      Alcotest.(check int) "row count" (List.length rows) (List.length parsed_rows);
      List.iteri
        (fun i got ->
          Alcotest.(check (list string))
            (Printf.sprintf "row %d survives byte-for-byte" i)
            (List.nth rows i) got)
        parsed_rows
  | [] -> Alcotest.fail "no records parsed"

let test_csv_of_report () =
  let report = List.hd (Core.Experiments.table2 ()) in
  let csv = Core.Csv.of_report report in
  Alcotest.(check bool) "header" true
    (contains csv "deadline,algorithm,cost,reduction_vs_greedy,config");
  Alcotest.(check bool) "greedy rows" true (contains csv "Greedy");
  (* one line per (row, algorithm) + header *)
  let lines = List.length (String.split_on_char '\n' (String.trim csv)) in
  let expected =
    1
    + List.fold_left
        (fun acc r -> acc + List.length r.Core.Experiments.costs)
        0 report.Core.Experiments.rows
  in
  Alcotest.(check int) "line count" expected lines

let test_csv_of_reports_prefixes_benchmark () =
  let reports = Core.Experiments.table2 () in
  let csv = Core.Csv.of_reports reports in
  Alcotest.(check bool) "benchmark column" true (contains csv "benchmark,deadline");
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (r.Core.Experiments.name ^ " present")
        true
        (contains csv r.Core.Experiments.name))
    reports

let test_csv_of_frontier () =
  let g, tbl = small_setup () in
  let points = Core.Frontier.trace ~algorithm:Core.Synthesis.Exact g tbl ~max_deadline:14 in
  let csv = Core.Csv.of_frontier points in
  Alcotest.(check bool) "header" true (contains csv "deadline,cost,config")

(* --- Config-aware assignment ------------------------------------------- *)

let test_config_aware_fits () =
  List.iter
    (fun (name, g) ->
      let rng = Workloads.Prng.create 87 in
      let tbl = Workloads.Tables.for_graph rng ~library:lib3 g in
      let tmin = Assign.Assignment.min_makespan g tbl in
      let deadline = tmin * 2 in
      let inventory = [| 1; 1; 2 |] in
      match Core.Config_aware.solve g tbl ~deadline ~inventory with
      | None -> () (* allowed: heuristic, or genuinely infeasible *)
      | Some r ->
          Alcotest.(check bool) (name ^ ": fits inventory") true
            (Sched.Schedule.fits tbl r.Core.Config_aware.schedule ~config:inventory);
          Alcotest.(check bool) (name ^ ": meets deadline") true
            (Sched.Schedule.meets_deadline tbl r.Core.Config_aware.schedule ~deadline);
          Alcotest.(check bool) (name ^ ": precedence") true
            (Sched.Schedule.respects_precedence g tbl r.Core.Config_aware.schedule);
          (* constrained can never beat the unconstrained optimum's cost
             reported by the same heuristic *)
          (match Assign.Dfg_assign.repeat g tbl ~deadline with
          | Some a ->
              Alcotest.(check bool) (name ^ ": cost >= unconstrained") true
                (r.Core.Config_aware.cost >= Assign.Assignment.total_cost tbl a)
          | None -> ()))
    (Workloads.Filters.dags ())

let test_config_aware_generous_inventory_is_free () =
  (* with a huge inventory the repair loop must terminate immediately at
     Repeat's own assignment *)
  let g = Workloads.Filters.diffeq () in
  let rng = Workloads.Prng.create 88 in
  let tbl = Workloads.Tables.for_graph rng ~library:lib3 g in
  let deadline = Assign.Assignment.min_makespan g tbl + 4 in
  let inventory = Array.make 3 20 in
  match
    (Core.Config_aware.solve g tbl ~deadline ~inventory,
     Assign.Dfg_assign.repeat g tbl ~deadline)
  with
  | Some r, Some a ->
      Alcotest.(check int) "same cost as repeat"
        (Assign.Assignment.total_cost tbl a)
        r.Core.Config_aware.cost
  | _ -> Alcotest.fail "feasible"

let test_config_aware_impossible () =
  (* 4 independent unit ops, 1 FU, deadline 2: no assignment fits *)
  let g = Helpers.graph 4 [] in
  let tbl = Helpers.table lib2 (List.init 4 (fun _ -> ([ 1; 1 ], [ 1; 1 ]))) in
  Alcotest.(check bool) "impossible" true
    (Core.Config_aware.solve g tbl ~deadline:2 ~inventory:[| 1; 0 |] = None)

(* --- DVS tables -------------------------------------------------------- *)

let test_dvs_monotone_tradeoff () =
  let g = Workloads.Filters.elliptic () in
  let rng = Workloads.Prng.create 61 in
  let tbl = Workloads.Tables.dvs rng ~levels:4 g in
  Alcotest.(check int) "4 levels" 4 (Fulib.Table.num_types tbl);
  Alcotest.(check string) "level names" "V2"
    (Fulib.Library.type_name (Fulib.Table.library tbl) 2);
  for v = 0 to Dfg.Graph.num_nodes g - 1 do
    for k = 1 to 3 do
      Alcotest.(check bool) "times non-decreasing" true
        (Fulib.Table.time tbl ~node:v ~ftype:k
        >= Fulib.Table.time tbl ~node:v ~ftype:(k - 1));
      Alcotest.(check bool) "energy non-increasing" true
        (Fulib.Table.cost tbl ~node:v ~ftype:k
        <= Fulib.Table.cost tbl ~node:v ~ftype:(k - 1))
    done
  done

let test_dvs_energy_falls_with_levels () =
  (* the library-size study's core claim, asserted deterministically *)
  let g = Workloads.Filters.diffeq () in
  let energy levels =
    let rng = Workloads.Prng.create 7 in
    let tbl = Workloads.Tables.dvs rng ~levels g in
    let tmin = Core.Synthesis.min_deadline g tbl in
    match
      Assign.Solve.dispatch Core.Synthesis.Repeat g tbl
        ~deadline:(tmin + (tmin / 2))
    with
    | Some a -> Assign.Assignment.total_cost tbl a
    | None -> Alcotest.fail "feasible"
  in
  let e1 = energy 1 and e3 = energy 3 and e5 = energy 5 in
  Alcotest.(check bool) (Printf.sprintf "%d > %d > %d" e1 e3 e5) true
    (e1 > e3 && e3 >= e5)

let test_dvs_invalid () =
  let g = graph 1 [] in
  let rng = Workloads.Prng.create 1 in
  Alcotest.check_raises "0 levels" (Invalid_argument "Tables.dvs: levels < 1")
    (fun () -> ignore (Workloads.Tables.dvs rng ~levels:0 g))

let () =
  Alcotest.run "core.extensions"
    [
      ( "frontier",
        [
          quick "staircase" test_frontier_staircase;
          quick "infeasible max deadline" test_frontier_infeasible_max;
          quick "heuristic staircase monotone" test_frontier_heuristic_monotone;
        ] );
      ( "csv",
        [
          quick "escaping" test_csv_escaping;
          quick "round trip" test_csv_round_trip;
          quick "of_report" test_csv_of_report;
          quick "of_reports" test_csv_of_reports_prefixes_benchmark;
          quick "of_frontier" test_csv_of_frontier;
        ] );
      ( "config_aware",
        [
          quick "fits inventory on benchmarks" test_config_aware_fits;
          quick "generous inventory" test_config_aware_generous_inventory_is_free;
          quick "impossible inventory" test_config_aware_impossible;
        ] );
      ( "dvs",
        [
          quick "monotone trade-off" test_dvs_monotone_tradeoff;
          quick "energy falls with levels" test_dvs_energy_falls_with_levels;
          quick "invalid levels" test_dvs_invalid;
        ] );
    ]
