open Helpers

let tree_is_forest t = Dfg.Graph.is_tree t.Dfg.Expand.graph

let test_tree_unchanged () =
  let g = graph 5 [ (0, 1); (0, 2); (1, 3); (1, 4) ] in
  let t = Dfg.Expand.expand g in
  Alcotest.(check int) "same size" 5 (Dfg.Graph.num_nodes t.Dfg.Expand.graph);
  Alcotest.(check (list int)) "no duplicates" [] (Dfg.Expand.duplicated_nodes t);
  Alcotest.(check bool) "still a tree" true (tree_is_forest t)

let test_diamond_duplicates_join () =
  let g = diamond () in
  let t = Dfg.Expand.expand g in
  Alcotest.(check int) "5 tree nodes" 5 (Dfg.Graph.num_nodes t.Dfg.Expand.graph);
  Alcotest.(check (list int)) "join duplicated" [ 3 ] (Dfg.Expand.duplicated_nodes t);
  Alcotest.(check int) "two copies" 2 (Dfg.Expand.copy_count t 3);
  Alcotest.(check bool) "result is a tree" true (tree_is_forest t)

let test_origin_and_copies_consistent () =
  let g = diamond () in
  let t = Dfg.Expand.expand g in
  Array.iteri
    (fun tree_node orig ->
      Alcotest.(check bool)
        "copies lists its tree node" true
        (List.mem tree_node t.Dfg.Expand.copies.(orig)))
    t.Dfg.Expand.origin;
  (* names and ops carried over *)
  Array.iteri
    (fun tree_node orig ->
      Alcotest.(check string)
        "name preserved"
        (Dfg.Graph.name g orig)
        (Dfg.Graph.name t.Dfg.Expand.graph tree_node))
    t.Dfg.Expand.origin

let sorted_path_names g path = List.map (Dfg.Graph.name g) path

let test_all_critical_paths_preserved () =
  (* two stacked diamonds: every original critical path must appear in the
     expanded tree, as a path with the same node names *)
  let g =
    graph 7 [ (0, 1); (0, 2); (1, 3); (2, 3); (3, 4); (3, 5); (4, 6); (5, 6) ]
  in
  let t = Dfg.Expand.expand g in
  let original =
    List.sort_uniq compare
      (List.map (sorted_path_names g) (Dfg.Paths.critical_paths g))
  in
  let expanded =
    List.sort_uniq compare
      (List.map
         (sorted_path_names t.Dfg.Expand.graph)
         (Dfg.Paths.critical_paths t.Dfg.Expand.graph))
  in
  Alcotest.(check (list (list string))) "same critical paths" original expanded

let test_tree_size_equals_path_to_node_counts () =
  let g =
    graph 7 [ (0, 1); (0, 2); (1, 3); (2, 3); (3, 4); (3, 5); (4, 6); (5, 6) ]
  in
  let t = Dfg.Expand.expand g in
  (* one copy per distinct root-to-node path *)
  let expected =
    let n = Dfg.Graph.num_nodes g in
    let counts = Array.make n 0 in
    List.iter
      (fun v ->
        let c =
          match Dfg.Graph.dag_preds g v with
          | [] -> 1
          | ps -> List.fold_left (fun acc p -> acc + counts.(p)) 0 ps
        in
        counts.(v) <- c)
      (Dfg.Topo.sort g);
    Array.fold_left ( + ) 0 counts
  in
  Alcotest.(check int) "tree size" expected (Dfg.Graph.num_nodes t.Dfg.Expand.graph)

let test_multi_root () =
  let g = graph 3 [ (0, 2); (1, 2) ] in
  let t = Dfg.Expand.expand g in
  Alcotest.(check int) "4 nodes" 4 (Dfg.Graph.num_nodes t.Dfg.Expand.graph);
  Alcotest.(check int) "2 roots" 2 (List.length (Dfg.Graph.roots t.Dfg.Expand.graph))

let test_delay_edges_dropped () =
  let g = graph_with_delays 3 [ (0, 1, 0); (1, 2, 0); (2, 0, 1) ] in
  let t = Dfg.Expand.expand g in
  Alcotest.(check int) "3 nodes" 3 (Dfg.Graph.num_nodes t.Dfg.Expand.graph);
  Alcotest.(check int) "only zero-delay edges" 2
    (Dfg.Graph.num_edges t.Dfg.Expand.graph)

let test_too_large () =
  (* 12 stacked diamonds -> 2^13 - ... paths; cap at 100 nodes *)
  let d = 12 in
  let edges =
    List.concat
      (List.init d (fun i ->
           let base = 3 * i in
           [ (base, base + 1); (base, base + 2); (base + 1, base + 3); (base + 2, base + 3) ]))
  in
  let g = graph ((3 * d) + 1) edges in
  Alcotest.check_raises "raises Too_large" (Dfg.Expand.Too_large 100)
    (fun () -> ignore (Dfg.Expand.expand ~max_nodes:100 g))

let test_empty () =
  let t = Dfg.Expand.expand (graph 0 []) in
  Alcotest.(check int) "empty" 0 (Dfg.Graph.num_nodes t.Dfg.Expand.graph)

let () =
  Alcotest.run "dfg.expand"
    [
      ( "expand",
        [
          quick "tree passes through" test_tree_unchanged;
          quick "diamond join duplicated" test_diamond_duplicates_join;
          quick "origin/copies consistent" test_origin_and_copies_consistent;
          quick "critical paths preserved" test_all_critical_paths_preserved;
          quick "size = number of root paths" test_tree_size_equals_path_to_node_counts;
          quick "multiple roots" test_multi_root;
          quick "delay edges dropped" test_delay_edges_dropped;
          quick "max_nodes cap" test_too_large;
          quick "empty graph" test_empty;
        ] );
    ]
