open Helpers

let items l = Array.of_list (List.map (fun (value, weight) -> { Assign.Knapsack.value; weight }) l)

let test_classic_instance () =
  let its = items [ (60, 10); (100, 20); (120, 30) ] in
  Alcotest.(check int) "best of capacity 50" 220
    (Assign.Knapsack.max_value ~items:its ~capacity:50);
  let chosen, v = Assign.Knapsack.solve ~items:its ~capacity:50 in
  Alcotest.(check int) "solve agrees" 220 v;
  Alcotest.(check (array bool)) "items 2 and 3" [| false; true; true |] chosen

let test_zero_capacity () =
  let its = items [ (5, 1); (9, 2) ] in
  Alcotest.(check int) "nothing fits" 0 (Assign.Knapsack.max_value ~items:its ~capacity:0)

let test_zero_weight_items_always_taken () =
  let its = items [ (5, 0); (9, 2) ] in
  Alcotest.(check int) "free item" 5 (Assign.Knapsack.max_value ~items:its ~capacity:1)

let test_empty () =
  Alcotest.(check int) "no items" 0 (Assign.Knapsack.max_value ~items:[||] ~capacity:10)

let test_negative_rejected () =
  Alcotest.check_raises "negative"
    (Invalid_argument "Knapsack: negative value or weight") (fun () ->
      ignore (Assign.Knapsack.max_value ~items:(items [ (-1, 2) ]) ~capacity:3))

let test_solution_subset_consistent () =
  let rng = Workloads.Prng.create 21 in
  for _ = 1 to 50 do
    let n = 1 + Workloads.Prng.int rng 10 in
    let its =
      Array.init n (fun _ ->
          { Assign.Knapsack.value = Workloads.Prng.int rng 20;
            weight = Workloads.Prng.int rng 12 })
    in
    let capacity = Workloads.Prng.int rng 40 in
    let chosen, v = Assign.Knapsack.solve ~items:its ~capacity in
    let total_v = ref 0 and total_w = ref 0 in
    Array.iteri
      (fun i c ->
        if c then begin
          total_v := !total_v + its.(i).Assign.Knapsack.value;
          total_w := !total_w + its.(i).Assign.Knapsack.weight
        end)
      chosen;
    Alcotest.(check int) "reported value matches subset" v !total_v;
    Alcotest.(check bool) "within capacity" true (!total_w <= capacity)
  done

let test_decision () =
  let its = items [ (60, 10); (100, 20); (120, 30) ] in
  Alcotest.(check bool) "achievable" true
    (Assign.Knapsack.decision ~items:its ~capacity:50 ~target_value:220);
  Alcotest.(check bool) "not achievable" false
    (Assign.Knapsack.decision ~items:its ~capacity:50 ~target_value:221)

(* --- Theorem 4.1 round trip: knapsack <-> 2-type path assignment --- *)

let test_reduction_structure () =
  let its = items [ (7, 3); (4, 1) ] in
  let inst = Assign.Np_reduction.of_knapsack ~items:its ~capacity:4 in
  Alcotest.(check int) "deadline = n + W" 6 inst.Assign.Np_reduction.deadline;
  Alcotest.(check int) "M = max value + 1" 8 inst.Assign.Np_reduction.big;
  let tbl = inst.Assign.Np_reduction.table in
  Alcotest.(check int) "select time = w + 1" 4 (Fulib.Table.time tbl ~node:0 ~ftype:0);
  Alcotest.(check int) "skip time = 1" 1 (Fulib.Table.time tbl ~node:0 ~ftype:1);
  Alcotest.(check int) "select cost = M - a" 1 (Fulib.Table.cost tbl ~node:0 ~ftype:0);
  Alcotest.(check int) "skip cost = M" 8 (Fulib.Table.cost tbl ~node:0 ~ftype:1)

let test_reduction_agrees_with_dp () =
  let rng = Workloads.Prng.create 31 in
  for _ = 1 to 60 do
    let n = 1 + Workloads.Prng.int rng 6 in
    let its =
      Array.init n (fun _ ->
          { Assign.Knapsack.value = Workloads.Prng.int rng 15;
            weight = Workloads.Prng.int rng 8 })
    in
    let capacity = Workloads.Prng.int rng 20 in
    let target_value = Workloads.Prng.int rng 40 in
    Alcotest.(check bool)
      (Printf.sprintf "decision equivalence (n=%d W=%d V=%d)" n capacity target_value)
      (Assign.Knapsack.decision ~items:its ~capacity ~target_value)
      (Assign.Np_reduction.decide_via_assignment ~items:its ~capacity ~target_value)
  done

let test_reduction_optimal_subset_maps_back () =
  let its = items [ (60, 10); (100, 20); (120, 30) ] in
  let inst = Assign.Np_reduction.of_knapsack ~items:its ~capacity:50 in
  match
    Assign.Path_assign.solve inst.Assign.Np_reduction.table
      ~deadline:inst.Assign.Np_reduction.deadline
  with
  | None -> Alcotest.fail "reduction instance must be feasible"
  | Some a ->
      let subset = Assign.Np_reduction.subset_of_assignment a in
      Alcotest.(check (array bool)) "optimal subset" [| false; true; true |] subset

let () =
  Alcotest.run "assign.knapsack"
    [
      ( "knapsack",
        [
          quick "classic instance" test_classic_instance;
          quick "zero capacity" test_zero_capacity;
          quick "zero-weight items" test_zero_weight_items_always_taken;
          quick "empty" test_empty;
          quick "negative rejected" test_negative_rejected;
          quick "subset consistent" test_solution_subset_consistent;
          quick "decision" test_decision;
        ] );
      ( "np_reduction",
        [
          quick "instance structure" test_reduction_structure;
          quick "decision round-trip" test_reduction_agrees_with_dp;
          quick "optimal subset maps back" test_reduction_optimal_subset_maps_back;
        ] );
    ]
