(* lib/rt: admission control unit tests plus the differential soundness
   property — every admitted set must replay deadline-miss-free over a
   hyperperiod (Rt.Sim, built on Sched.Cyclic_schedule.simulate), every
   rejection must carry a witness that re-checks arithmetically, and the
   verdict sequence must not depend on the solver's domain count. *)

let check = Alcotest.(check bool)

(* --- capacity specs ----------------------------------------------------- *)

let test_spec_parse () =
  (match Rt.Admission.spec_of_string "4" with
  | Ok (Rt.Admission.Uniform 4) -> ()
  | _ -> Alcotest.fail "\"4\" should parse to Uniform 4");
  (match Rt.Admission.spec_of_string "2-1-3" with
  | Ok (Rt.Admission.Per_type [| 2; 1; 3 |]) -> ()
  | _ -> Alcotest.fail "\"2-1-3\" should parse per-type");
  (match Rt.Admission.spec_of_string "2,1" with
  | Ok (Rt.Admission.Per_type [| 2; 1 |]) -> ()
  | _ -> Alcotest.fail "\"2,1\" should parse per-type");
  List.iter
    (fun s ->
      match Rt.Admission.spec_of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%S should not parse" s)
    [ ""; "abc"; "1-x"; "-3" ];
  (* round-trip through the printer *)
  List.iter
    (fun spec ->
      match Rt.Admission.spec_of_string (Rt.Admission.spec_to_string spec) with
      | Ok spec' -> check "spec round-trip" true (spec = spec')
      | Error e -> Alcotest.failf "round-trip failed: %s" e)
    [ Rt.Admission.Uniform 7; Rt.Admission.Per_type [| 1; 4; 2 |] ]

let test_spec_env () =
  let getenv_of v _ = v in
  (match Rt.Admission.spec_from_env ~getenv:(getenv_of (Some "3-1")) () with
  | Rt.Admission.Per_type [| 3; 1 |] -> ()
  | _ -> Alcotest.fail "env 3-1 should win");
  check "unset env falls back to default" true
    (Rt.Admission.spec_from_env ~getenv:(getenv_of None) ()
    = Rt.Admission.Uniform Rt.Admission.default_uniform_capacity);
  check "garbage env falls back to default" true
    (Rt.Admission.spec_from_env ~getenv:(getenv_of (Some "nope")) ()
    = Rt.Admission.Uniform Rt.Admission.default_uniform_capacity)

(* --- witnesses ---------------------------------------------------------- *)

let test_witnesses () =
  let holds = Rt.Verdict.witness_holds in
  check "period overrun holds" true
    (holds (Rt.Verdict.Period_overrun { min_period = 10; period = 8 }));
  check "period non-overrun refuted" false
    (holds (Rt.Verdict.Period_overrun { min_period = 8; period = 8 }));
  check "capacity shortfall holds" true
    (holds (Rt.Verdict.Insufficient_capacity { ftype = 1; need = 3; have = 2 }));
  check "capacity fit refuted" false
    (holds (Rt.Verdict.Insufficient_capacity { ftype = 0; need = 2; have = 2 }));
  check "utilization overrun holds" true
    (holds (Rt.Verdict.Utilization_overrun { utilization = 1.25; bound = 1.0 }));
  check "utilization within bound refuted" false
    (holds (Rt.Verdict.Utilization_overrun { utilization = 0.9; bound = 1.0 }));
  check "response overrun holds" true
    (holds (Rt.Verdict.Response_overrun { id = "x"; response = 20; deadline = 15 }));
  check "response within deadline refuted" false
    (holds (Rt.Verdict.Response_overrun { id = "x"; response = 15; deadline = 15 }));
  List.iter
    (fun r -> check "structural reasons hold vacuously" true (holds r))
    [
      Rt.Verdict.Infeasible_deadline;
      Rt.Verdict.Synthesis_error "boom";
      Rt.Verdict.Width_mismatch { expected = 2; got = 3 };
      Rt.Verdict.Duplicate_id "a";
    ]

let test_reason_codes () =
  (* wire codes are a protocol: lock them down *)
  List.iter
    (fun (r, code) -> Alcotest.(check string) code code (Rt.Verdict.reason_code r))
    [
      (Rt.Verdict.Infeasible_deadline, "infeasible_deadline");
      (Rt.Verdict.Synthesis_error "x", "synthesis_error");
      (Rt.Verdict.Period_overrun { min_period = 2; period = 1 }, "period_overrun");
      (Rt.Verdict.Width_mismatch { expected = 2; got = 3 }, "width_mismatch");
      (Rt.Verdict.Duplicate_id "a", "duplicate_id");
      ( Rt.Verdict.Insufficient_capacity { ftype = 0; need = 2; have = 1 },
        "insufficient_capacity" );
      ( Rt.Verdict.Utilization_overrun { utilization = 1.5; bound = 1.0 },
        "utilization_overrun" );
      ( Rt.Verdict.Response_overrun { id = "a"; response = 9; deadline = 8 },
        "response_overrun" );
    ]

(* --- response-time iteration -------------------------------------------- *)

let test_response_time () =
  check "empty set schedulable" true
    (Rt.Response_time.analyse [] = Rt.Response_time.Schedulable []);
  (* single task: no interference, no blocking *)
  (match
     Rt.Response_time.analyse
       [ { Rt.Response_time.id = "a"; cost = 3; period = 10; deadline = 10 } ]
   with
  | Rt.Response_time.Schedulable [ ("a", 3) ] -> ()
  | _ -> Alcotest.fail "single light: response = cost");
  (* two tasks: the high-priority one blocks on the low one's whole job,
     the low one absorbs one preemption-free high job per period *)
  (match
     Rt.Response_time.analyse
       [
         { Rt.Response_time.id = "hi"; cost = 2; period = 5; deadline = 5 };
         { Rt.Response_time.id = "lo"; cost = 3; period = 10; deadline = 10 };
       ]
   with
  | Rt.Response_time.Schedulable l ->
      check "hi: cost + blocking" true (List.assoc "hi" l = 5);
      check "lo: cost + one hi job" true (List.assoc "lo" l = 5)
  | _ -> Alcotest.fail "hi/lo pair is schedulable");
  (* same pair with a tight high-priority deadline: blocking kills it *)
  (match
     Rt.Response_time.analyse
       [
         { Rt.Response_time.id = "hi"; cost = 2; period = 5; deadline = 4 };
         { Rt.Response_time.id = "lo"; cost = 3; period = 10; deadline = 10 };
       ]
   with
  | Rt.Response_time.Response_overrun { id = "hi"; response; deadline = 4 } ->
      check "overrun witness crosses the deadline" true (response > 4)
  | _ -> Alcotest.fail "blocking must push hi over deadline 4");
  (* utilization gate fires before any fixpoint *)
  (match
     Rt.Response_time.analyse
       [
         { Rt.Response_time.id = "a"; cost = 3; period = 5; deadline = 5 };
         { Rt.Response_time.id = "b"; cost = 3; period = 5; deadline = 5 };
       ]
   with
  | Rt.Response_time.Utilization_overrun u ->
      check "witness exceeds the bound" true
        (u > Rt.Response_time.utilization_bound)
  | _ -> Alcotest.fail "1.2 utilization must overrun");
  check "unconstrained deadline rejected" true
    (try
       ignore
         (Rt.Response_time.analyse
            [ { Rt.Response_time.id = "a"; cost = 1; period = 4; deadline = 5 } ]);
       false
     with Invalid_argument _ -> true)

(* --- task construction and analysis ------------------------------------- *)

(* serial 3-node chain over lib2: fast type 2 steps/node, slow type 4 *)
let chain_task ~period ~deadline =
  let g = Helpers.path_graph 3 in
  let tbl =
    Helpers.table Helpers.lib2
      [ ([ 2; 4 ], [ 4; 1 ]); ([ 2; 4 ], [ 4; 1 ]); ([ 2; 4 ], [ 4; 1 ]) ]
  in
  Rt.Task.make ~period ~deadline g tbl

(* one node; at a loose deadline Min_resource picks the cheap slow unit,
   so the job costs 9 steps — a light task with utilization 9/period *)
let blip_task ~period ~deadline =
  let g = Helpers.graph 1 [] in
  let tbl = Helpers.table Helpers.lib2 [ ([ 7; 9 ], [ 2; 1 ]) ] in
  Rt.Task.make ~period ~deadline g tbl

(* one node, 3 steps on the cheap unit — a small filler light task *)
let tiny_task ~period ~deadline =
  let g = Helpers.graph 1 [] in
  let tbl = Helpers.table Helpers.lib2 [ ([ 2; 3 ], [ 2; 1 ]) ] in
  Rt.Task.make ~period ~deadline g tbl

let analysed_exn task =
  match Rt.Task.analyse task with
  | Ok a -> a
  | Error r -> Alcotest.failf "analyse failed: %s" (Rt.Verdict.reason_detail r)

let test_task_validation () =
  check "period < 1 rejected" true
    (try
       ignore (chain_task ~period:0 ~deadline:8);
       false
     with Invalid_argument _ -> true);
  check "deadline < 1 rejected" true
    (try
       ignore (chain_task ~period:8 ~deadline:0);
       false
     with Invalid_argument _ -> true);
  check "node-count mismatch rejected" true
    (try
       let g = Helpers.path_graph 3 in
       let tbl = Helpers.table Helpers.lib2 [ ([ 1; 1 ], [ 1; 1 ]) ] in
       ignore (Rt.Task.make ~period:8 ~deadline:8 g tbl);
       false
     with Invalid_argument _ -> true)

let test_task_analyse () =
  (* comfortable: light, schedulable, utilization below threshold *)
  let a = analysed_exn (chain_task ~period:16 ~deadline:12) in
  check "chain at period 16 is light" false a.Rt.Task.heavy;
  check "utilization below threshold" true
    (a.Rt.Task.utilization < Rt.Task.default_heavy_threshold);
  check "makespan within deadline" true (a.Rt.Task.makespan <= 12);
  check "min_period within period" true (a.Rt.Task.min_period <= 16);
  (* a serial chain cannot repeat faster than its busiest FU type drains:
     3 nodes over 2 types means some type carries >= 3 steps of work per
     iteration on one instance, so period 2 is below any min_period *)
  (match Rt.Task.analyse (chain_task ~period:2 ~deadline:8) with
  | Error (Rt.Verdict.Period_overrun { min_period; period = 2 }) ->
      check "period-overrun witness holds" true (min_period > 2)
  | _ -> Alcotest.fail "chain at period 2 must overrun its min period");
  (* deadline below the critical path: infeasible outright *)
  (match Rt.Task.analyse (chain_task ~period:16 ~deadline:3) with
  | Error Rt.Verdict.Infeasible_deadline -> ()
  | _ -> Alcotest.fail "deadline 3 < critical path must be infeasible");
  (* lowering the threshold flips the same task heavy *)
  let h = Rt.Task.analyse ~heavy_threshold:0.2 (chain_task ~period:16 ~deadline:12) in
  (match h with
  | Ok a -> check "threshold 0.2 makes it heavy" true a.Rt.Task.heavy
  | Error _ -> Alcotest.fail "threshold change cannot break feasibility")

(* --- admission sequences ------------------------------------------------ *)

let admit_exn adm ~id task =
  match Rt.Admission.try_admit adm ~id (analysed_exn task) with
  | Rt.Verdict.Admitted r -> r
  | Rt.Verdict.Rejected r ->
      Alcotest.failf "%s unexpectedly rejected: %s" id
        (Rt.Verdict.reason_detail r)

let reject_code adm ~id task =
  match Rt.Admission.try_admit adm ~id (analysed_exn task) with
  | Rt.Verdict.Admitted _ -> Alcotest.failf "%s unexpectedly admitted" id
  | Rt.Verdict.Rejected r ->
      check "rejection witness holds" true (Rt.Verdict.witness_holds r);
      Rt.Verdict.reason_code r

let test_admission_lifecycle () =
  let adm = Rt.Admission.create ~capacity:(Rt.Admission.Uniform 2) () in
  let r = admit_exn adm ~id:"a" (chain_task ~period:16 ~deadline:12) in
  check "chain admitted light" false r.Rt.Verdict.heavy;
  check "duplicate id rejected" true
    (reject_code adm ~id:"a" (chain_task ~period:16 ~deadline:12)
    = "duplicate_id");
  (* a 3-type task on a platform whose width is now fixed at 2 *)
  let wide =
    let g = Helpers.graph 1 [] in
    let tbl =
      Fulib.Table.make ~library:Helpers.lib3 ~time:[| [| 1; 2; 3 |] |]
        ~cost:[| [| 3; 2; 1 |] |]
    in
    Rt.Task.make ~period:8 ~deadline:8 g tbl
  in
  check "width mismatch rejected" true
    (reject_code adm ~id:"w" wide = "width_mismatch");
  check "release unknown id" false (Rt.Admission.release adm ~id:"zzz");
  check "release admitted id" true (Rt.Admission.release adm ~id:"a");
  check "released controller is empty" true (Rt.Admission.admitted adm = []);
  ignore (admit_exn adm ~id:"a" (chain_task ~period:16 ~deadline:12));
  check "re-admission after release" true
    (match Rt.Admission.find adm ~id:"a" with Some _ -> None = None | None -> false);
  check "one-light set simulates clean" true (Rt.Sim.ok (Rt.Sim.run adm))

let test_admission_heavy_capacity () =
  (* threshold 0.5 turns the chain heavy; on a width-1 platform the second
     copy cannot find a free fast unit *)
  let adm = Rt.Admission.create ~capacity:(Rt.Admission.Uniform 1) () in
  let analyse task =
    match Rt.Task.analyse ~heavy_threshold:0.5 task with
    | Ok a -> a
    | Error r -> Alcotest.failf "analyse: %s" (Rt.Verdict.reason_detail r)
  in
  let a1 = analyse (chain_task ~period:8 ~deadline:8) in
  check "chain at period 8 heavy under 0.5" true a1.Rt.Task.heavy;
  (match Rt.Admission.try_admit adm ~id:"h1" a1 with
  | Rt.Verdict.Admitted r ->
      check "heavy reservation flagged" true r.Rt.Verdict.heavy;
      check "heavy response = makespan" true
        (r.Rt.Verdict.response_time = a1.Rt.Task.makespan)
  | Rt.Verdict.Rejected r ->
      Alcotest.failf "h1 rejected: %s" (Rt.Verdict.reason_detail r));
  (* residual shrank by the reservation *)
  (match Rt.Admission.residual adm with
  | Some res ->
      check "residual dominated by capacity" true
        (Array.for_all (fun c -> c <= 1) res);
      check "some type exhausted" true (Array.exists (fun c -> c = 0) res)
  | None -> Alcotest.fail "residual known after first admission");
  (match Rt.Admission.try_admit adm ~id:"h2" (analyse (chain_task ~period:8 ~deadline:8)) with
  | Rt.Verdict.Rejected (Rt.Verdict.Insufficient_capacity _ as r) ->
      check "capacity witness holds" true (Rt.Verdict.witness_holds r)
  | v ->
      Alcotest.failf "h2 should exhaust capacity, got %s"
        (Format.asprintf "%a" Rt.Verdict.pp v));
  check "heavy-only set simulates clean" true (Rt.Sim.ok (Rt.Sim.run adm))

let test_admission_light_interference () =
  let adm = Rt.Admission.create ~capacity:(Rt.Admission.Uniform 2) () in
  ignore (admit_exn adm ~id:"l1" (blip_task ~period:16 ~deadline:16));
  (* a second 9/16 blip pushes the serialized server past 1.0 *)
  check "second blip overruns utilization" true
    (reject_code adm ~id:"l2" (blip_task ~period:16 ~deadline:16)
    = "utilization_overrun");
  check "rejection left state intact" true
    (List.length (Rt.Admission.admitted adm) = 1);
  (* a tight-deadline candidate cannot absorb the blocking of an admitted
     job: the response-time witness names the loser *)
  let adm2 = Rt.Admission.create ~capacity:(Rt.Admission.Uniform 2) () in
  ignore (admit_exn adm2 ~id:"slow" (blip_task ~period:32 ~deadline:32));
  let tight =
    let g = Helpers.graph 1 [] in
    let tbl = Helpers.table Helpers.lib2 [ ([ 2; 9 ], [ 2; 1 ]) ] in
    Rt.Task.make ~period:32 ~deadline:4 g tbl
  in
  check "tight candidate blocked past its deadline" true
    (reject_code adm2 ~id:"tight" tight = "response_overrun");
  check "survivors simulate clean" true (Rt.Sim.ok (Rt.Sim.run adm))

let test_sim_certificate () =
  (* mixed heavy + lights; the certificate must enumerate light jobs over
     the whole hyperperiod *)
  let adm = Rt.Admission.create ~capacity:(Rt.Admission.Uniform 2) () in
  let heavy =
    match Rt.Task.analyse ~heavy_threshold:0.5 (chain_task ~period:8 ~deadline:8) with
    | Ok a -> a
    | Error r -> Alcotest.failf "analyse: %s" (Rt.Verdict.reason_detail r)
  in
  (match Rt.Admission.try_admit adm ~id:"h" heavy with
  | Rt.Verdict.Admitted _ -> ()
  | Rt.Verdict.Rejected r ->
      Alcotest.failf "heavy rejected: %s" (Rt.Verdict.reason_detail r));
  ignore (admit_exn adm ~id:"l1" (blip_task ~period:16 ~deadline:16));
  ignore (admit_exn adm ~id:"l2" (tiny_task ~period:32 ~deadline:32));
  let cert = Rt.Sim.run adm in
  check "certificate ok" true (Rt.Sim.ok cert);
  check "hyperperiod is the lcm" true (cert.Rt.Sim.hyperperiod = 32);
  (* l1 releases at 0 and 16, l2 at 0: three light jobs *)
  check "every light job replayed" true (List.length cert.Rt.Sim.jobs = 3);
  check "no misses" true (cert.Rt.Sim.misses = []);
  List.iter
    (fun (j : Rt.Sim.job) ->
      check "job finishes after it starts" true (j.finish > j.start);
      check "job starts at or after release" true (j.start >= j.release);
      check "job meets its deadline" true (j.finish <= j.deadline_at))
    cert.Rt.Sim.jobs;
  (* the job guard trips on absurd caps *)
  check "max_jobs guard raises" true
    (try
       ignore (Rt.Sim.run ~max_jobs:1 adm);
       false
     with Invalid_argument _ -> true)

(* --- differential soundness --------------------------------------------- *)

(* One full admission run: analyse + admit every spec in order, asserting
   each rejection's witness; returns the verdict trace and controller. *)
let run_admissions specs ~capacity =
  let adm = Rt.Admission.create ~capacity () in
  let trace =
    List.map
      (fun (s : Workloads.Task_set.spec) ->
        let task =
          Rt.Task.make ~period:s.period ~deadline:s.deadline s.graph s.table
        in
        match Rt.Task.analyse task with
        | Error r ->
            if not (Rt.Verdict.witness_holds r) then
              QCheck.Test.fail_reportf "analyse witness broken: %s"
                (Rt.Verdict.reason_detail r);
            "!" ^ Rt.Verdict.reason_code r
        | Ok analysed -> (
            match Rt.Admission.try_admit adm ~id:s.name analysed with
            | Rt.Verdict.Admitted _ -> "admitted"
            | Rt.Verdict.Rejected r ->
                if not (Rt.Verdict.witness_holds r) then
                  QCheck.Test.fail_reportf "rejection witness broken: %s"
                    (Rt.Verdict.reason_detail r);
                Rt.Verdict.reason_code r))
      specs
  in
  (trace, adm)

let admitted_sets_simulate_clean =
  QCheck.Test.make ~count:60 ~name:"admitted sets simulate deadline-miss-free"
    (QCheck.make ~print:string_of_int QCheck.Gen.(map abs int))
    (fun seed ->
      let rng = Workloads.Prng.create seed in
      let tasks = 2 + Workloads.Prng.int rng 5 in
      let specs =
        Workloads.Task_set.random rng ~tasks ~min_nodes:3 ~max_nodes:8
      in
      let capacity = Rt.Admission.Uniform (1 + Workloads.Prng.int rng 3) in
      (* the differential core: identical verdicts at 1 and 2 solver
         domains, and both admitted sets pass the hyperperiod replay *)
      Par.Pool.set_global_domains 1;
      let t1, a1 = run_admissions specs ~capacity in
      Par.Pool.set_global_domains 2;
      let t2, a2 = run_admissions specs ~capacity in
      if t1 <> t2 then
        QCheck.Test.fail_reportf "verdicts diverge across domains: [%s] vs [%s]"
          (String.concat ";" t1) (String.concat ";" t2);
      let s1 = Rt.Sim.run a1 and s2 = Rt.Sim.run a2 in
      if not (Rt.Sim.ok s1) then
        QCheck.Test.fail_reportf "1-domain certificate failed:@ %a" Rt.Sim.pp s1;
      if not (Rt.Sim.ok s2) then
        QCheck.Test.fail_reportf "2-domain certificate failed:@ %a" Rt.Sim.pp s2;
      true)

let overload_always_rejects =
  QCheck.Test.make ~count:30 ~name:"overloaded sets reject and stay sound"
    (QCheck.make ~print:string_of_int QCheck.Gen.(map abs int))
    (fun seed ->
      let rng = Workloads.Prng.create seed in
      let specs =
        Workloads.Task_set.overloaded rng ~tasks:5 ~min_nodes:3 ~max_nodes:8
      in
      let trace, adm = run_admissions specs ~capacity:(Rt.Admission.Uniform 1) in
      (* five near-1.0-utilization tasks cannot all fit one instance per
         type: something must be turned away, and what remains must hold *)
      if not (List.exists (fun v -> v <> "admitted") trace) then
        QCheck.Test.fail_reportf "no rejection in [%s]" (String.concat ";" trace);
      Rt.Sim.ok (Rt.Sim.run adm))

let () =
  Alcotest.run "rt"
    [
      ( "verdicts",
        [
          Alcotest.test_case "capacity spec parsing" `Quick test_spec_parse;
          Alcotest.test_case "capacity spec from env" `Quick test_spec_env;
          Alcotest.test_case "witnesses re-check" `Quick test_witnesses;
          Alcotest.test_case "reason codes stable" `Quick test_reason_codes;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "response-time iteration" `Quick test_response_time;
          Alcotest.test_case "task validation" `Quick test_task_validation;
          Alcotest.test_case "task analysis" `Quick test_task_analyse;
        ] );
      ( "admission",
        [
          Alcotest.test_case "lifecycle" `Quick test_admission_lifecycle;
          Alcotest.test_case "heavy capacity" `Quick test_admission_heavy_capacity;
          Alcotest.test_case "light interference" `Quick test_admission_light_interference;
          Alcotest.test_case "hyperperiod certificate" `Quick test_sim_certificate;
        ] );
      ( "differential",
        [
          QCheck_alcotest.to_alcotest admitted_sets_simulate_clean;
          QCheck_alcotest.to_alcotest overload_always_rejects;
        ] );
    ]
