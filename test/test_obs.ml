(* lib/obs: span nesting and sink semantics, counter/gauge registries,
   JSON emit/parse round-trips, trace assembly, counter parity across
   pool widths, and the disabled-mode no-allocation contract. *)

(* Every test that records spans forces tracing on via the override and
   restores environment control on the way out, so the suite is
   insensitive to HETSCHED_TRACE in the calling environment. *)
let with_tracing on f =
  Obs.Env.set_trace (Some on);
  Fun.protect ~finally:(fun () -> Obs.Env.set_trace None) f

let fresh () =
  Obs.Span.clear ();
  Obs.Counter.reset_all ();
  Obs.Gauge.reset_all ()

(* --- spans ------------------------------------------------------------- *)

let test_span_nesting () =
  fresh ();
  with_tracing true (fun () ->
      let r =
        Obs.Span.with_ "outer" (fun () ->
            Obs.Span.with_ "mid" (fun () ->
                Obs.Span.with_ "leaf1" (fun () -> ()));
            Obs.Span.with_ "leaf2" (fun () -> 42))
      in
      Alcotest.(check int) "with_ returns f's value" 42 r);
  match Obs.Span.roots () with
  | [ (_, root) ] ->
      Alcotest.(check string) "root name" "outer" root.Obs.Span.name;
      Alcotest.(check int) "depth" 3 (Obs.Span.depth root);
      Alcotest.(check int) "count" 4 (Obs.Span.count root);
      Alcotest.(check (list string))
        "children in open order" [ "mid"; "leaf2" ]
        (List.map (fun s -> s.Obs.Span.name) root.Obs.Span.children);
      (match Obs.Span.find "leaf1" root with
      | Some s ->
          Alcotest.(check bool) "leaf duration non-negative" true
            (s.Obs.Span.dur_ns >= 0.0)
      | None -> Alcotest.fail "leaf1 not found in span tree")
  | roots ->
      Alcotest.failf "expected exactly one root, got %d" (List.length roots)

let test_span_exception_still_recorded () =
  fresh ();
  with_tracing true (fun () ->
      match Obs.Span.with_ "boom" (fun () -> failwith "kept") with
      | _ -> Alcotest.fail "exception swallowed"
      | exception Failure msg -> Alcotest.(check string) "payload" "kept" msg);
  Alcotest.(check int) "span recorded despite the raise" 1
    (Obs.Span.sink_length ())

(* Mutation-style check of the overhead contract: with tracing off, spans
   run the closure but never touch the sink — if someone deletes the flag
   check in [Span.with_], this fails. *)
let test_disabled_spans_allocate_nothing () =
  fresh ();
  with_tracing false (fun () ->
      Alcotest.(check bool) "enabled () reports off" false
        (Obs.Span.enabled ());
      let r =
        Obs.Span.with_ "invisible" (fun () ->
            Obs.Span.with_ "also-invisible" (fun () -> 7))
      in
      Alcotest.(check int) "closure still runs" 7 r);
  Alcotest.(check int) "sink stayed empty" 0 (Obs.Span.sink_length ());
  Alcotest.(check (list reject)) "no roots" [] (Obs.Span.roots ())

(* --- counters and gauges ----------------------------------------------- *)

let test_counter_monotonic () =
  fresh ();
  let c = Obs.Counter.make "test.obs.mono" in
  Alcotest.(check int) "starts at zero" 0 (Obs.Counter.value c);
  let prev = ref (-1) in
  for _ = 1 to 100 do
    Obs.Counter.incr c;
    let v = Obs.Counter.value c in
    Alcotest.(check bool) "strictly increasing under incr" true (v > !prev);
    prev := v
  done;
  Obs.Counter.add c 17;
  Alcotest.(check int) "add accumulates" 117 (Obs.Counter.value c);
  let c' = Obs.Counter.make "test.obs.mono" in
  Obs.Counter.incr c';
  Alcotest.(check int) "make is idempotent: same cell" 118 (Obs.Counter.value c);
  Alcotest.(check (option int)) "value_of finds it" (Some 118)
    (Obs.Counter.value_of "test.obs.mono");
  Alcotest.(check bool) "snapshot carries it" true
    (List.mem ("test.obs.mono", 118) (Obs.Counter.snapshot ()))

let test_gauge_overwrites () =
  fresh ();
  let g = Obs.Gauge.make "test.obs.gauge" in
  Obs.Gauge.set g 4;
  Obs.Gauge.set g 2;
  Alcotest.(check int) "last value wins" 2 (Obs.Gauge.value g);
  Alcotest.(check (option int)) "by name" (Some 2)
    (Obs.Gauge.value_of "test.obs.gauge")

(* --- JSON -------------------------------------------------------------- *)

let test_json_round_trip () =
  let open Obs.Json in
  let doc =
    Obj
      [
        ("null", Null);
        ("bools", List [ Bool true; Bool false ]);
        ("ints", List [ Int 0; Int (-42); Int max_int ]);
        ("floats", List [ Float 1.5; Float (-0.25); Float 1e9 ]);
        ("string", String "quote \" backslash \\ newline \n tab \t unicode \xc3\xa9");
        ("nested", Obj [ ("empty_list", List []); ("empty_obj", Obj []) ]);
      ]
  in
  let s = to_string doc in
  let reparsed = parse_exn s in
  (* Whole floats may come back as Int — compare via re-emission, which is
     the contract to_string actually makes. *)
  Alcotest.(check string) "emit . parse . emit is stable" s
    (to_string reparsed);
  Alcotest.(check (option string))
    "member survives" (Some "quote \" backslash \\ newline \n tab \t unicode \xc3\xa9")
    (Option.bind (member "string" reparsed) to_string_opt);
  (match parse "[1, 2" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated document accepted");
  Alcotest.(check string) "\\uXXXX decodes" "é"
    (match parse_exn {|"é"|} with
    | String s -> s
    | _ -> Alcotest.fail "not a string")

let test_trace_round_trip () =
  fresh ();
  with_tracing true (fun () ->
      Obs.Span.with_ "trace.root" (fun () ->
          Obs.Span.with_ "trace.child" (fun () -> ())));
  let c = Obs.Counter.make "test.obs.trace_counter" in
  Obs.Counter.add c 5;
  let h = Obs.Histogram.make "test.obs.trace_hist" in
  Obs.Histogram.reset h;
  Obs.Histogram.observe h 500.0;
  let json = Obs.Trace.snapshot () in
  let reparsed = Obs.Json.parse_exn (Obs.Json.to_string json) in
  Alcotest.(check (option int))
    "counter survives the round trip" (Some 5)
    (Option.bind
       (Option.bind (Obs.Json.member "counters" reparsed)
          (Obs.Json.member "test.obs.trace_counter"))
       Obs.Json.to_int_opt);
  Alcotest.(check (option int))
    "histogram summary survives the round trip" (Some 1)
    (Option.bind
       (Option.bind
          (Option.bind (Obs.Json.member "histograms" reparsed)
             (Obs.Json.member "test.obs.trace_hist"))
          (Obs.Json.member "count"))
       Obs.Json.to_int_opt);
  let span_names =
    match Option.bind (Obs.Json.member "spans" reparsed) Obs.Json.to_list_opt with
    | Some entries ->
        List.filter_map
          (fun e ->
            Option.bind
              (Option.bind (Obs.Json.member "span" e)
                 (Obs.Json.member "name"))
              Obs.Json.to_string_opt)
          entries
    | None -> []
  in
  Alcotest.(check (list string)) "root span present" [ "trace.root" ] span_names

(* --- histograms --------------------------------------------------------- *)

let test_histogram_buckets_and_quantiles () =
  let h = Obs.Histogram.make "test.obs.hist" in
  Obs.Histogram.reset h;
  Alcotest.(check int) "empty count" 0 (Obs.Histogram.count h);
  Alcotest.(check (float 0.0)) "empty quantile" 0.0 (Obs.Histogram.quantile h 0.5);
  (* bucket layout: [2^(i-1), 2^i) lands in bucket i *)
  Alcotest.(check int) "sub-ns" 0 (Obs.Histogram.bucket_of_ns 0.25);
  Alcotest.(check int) "1ns" 1 (Obs.Histogram.bucket_of_ns 1.0);
  Alcotest.(check int) "1023ns" 10 (Obs.Histogram.bucket_of_ns 1023.0);
  Alcotest.(check int) "1024ns" 11 (Obs.Histogram.bucket_of_ns 1024.0);
  (* 90 fast observations, 10 slow: p50 near 100ns, p99 near 1ms, every
     estimate within the documented sqrt-2 factor of the true value *)
  for _ = 1 to 90 do Obs.Histogram.observe h 100.0 done;
  for _ = 1 to 10 do Obs.Histogram.observe h 1_000_000.0 done;
  Alcotest.(check int) "count" 100 (Obs.Histogram.count h);
  let within_factor label expected got =
    let ratio = got /. expected in
    if ratio < 1.0 /. sqrt 2.0 || ratio > sqrt 2.0 then
      Alcotest.failf "%s: %.1f not within sqrt2 of %.1f" label got expected
  in
  within_factor "p50" 100.0 (Obs.Histogram.quantile h 0.5);
  within_factor "p90" 100.0 (Obs.Histogram.quantile h 0.9);
  within_factor "p99" 1_000_000.0 (Obs.Histogram.quantile h 0.99);
  within_factor "mean" 100_090.0 (Obs.Histogram.mean h);
  (* the diffable-snapshot path used by the serve-load bench *)
  let before = Obs.Histogram.buckets h in
  for _ = 1 to 50 do Obs.Histogram.observe h 1_000_000.0 done;
  let delta =
    Array.mapi (fun i c -> c - before.(i)) (Obs.Histogram.buckets h)
  in
  within_factor "delta p50" 1_000_000.0
    (Obs.Histogram.quantile_of_buckets delta 0.5);
  Obs.Histogram.reset h;
  Alcotest.(check int) "reset" 0 (Obs.Histogram.count h)

(* The empty-quantile contract: 0.0 is the sentinel, no non-empty
   histogram can report it, and argument validation outranks emptiness. *)
let test_histogram_empty_quantile_contract () =
  let h = Obs.Histogram.make "test.obs.hist_empty" in
  Obs.Histogram.reset h;
  List.iter
    (fun q ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "empty sentinel at q=%.2f" q)
        0.0 (Obs.Histogram.quantile h q))
    [ 0.0; 0.25; 0.5; 0.99; 1.0 ];
  let raises q =
    try
      ignore (Obs.Histogram.quantile h q);
      false
    with Invalid_argument _ -> true
  in
  (* bad q raises even while empty: validation before the emptiness check *)
  Alcotest.(check bool) "q < 0 raises on empty" true (raises (-0.1));
  Alcotest.(check bool) "q > 1 raises on empty" true (raises 1.5);
  Alcotest.(check bool) "nan q raises on empty" true (raises Float.nan);
  (* all-zero snapshot is an empty histogram for the diffable path too *)
  Alcotest.(check (float 0.0))
    "all-zero buckets hit the sentinel" 0.0
    (Obs.Histogram.quantile_of_buckets
       (Array.make Obs.Histogram.num_buckets 0)
       0.5);
  (Alcotest.(check bool) "bad q on zero buckets raises" true
     (try
        ignore
          (Obs.Histogram.quantile_of_buckets
             (Array.make Obs.Histogram.num_buckets 0)
             2.0);
        false
      with Invalid_argument _ -> true));
  (* the sentinel is unreachable once anything was observed: even a
     sub-ns observation reports bucket 0's midpoint, 0.5 ns *)
  Obs.Histogram.observe h 0.0;
  List.iter
    (fun q ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "sub-ns floor at q=%.2f" q)
        0.5 (Obs.Histogram.quantile h q))
    [ 0.0; 0.5; 1.0 ];
  Obs.Histogram.reset h

let test_histogram_merge_and_registry () =
  let a = Obs.Histogram.make "test.obs.hist_a" in
  let b = Obs.Histogram.make "test.obs.hist_b" in
  Obs.Histogram.reset a;
  Obs.Histogram.reset b;
  Alcotest.(check bool) "registry idempotent" true
    (Obs.Histogram.make "test.obs.hist_a" == a);
  Alcotest.(check bool) "lookup by name" true
    (match Obs.Histogram.value_of "test.obs.hist_a" with
    | Some h -> h == a
    | None -> false);
  for _ = 1 to 5 do Obs.Histogram.observe a 10.0 done;
  for _ = 1 to 3 do Obs.Histogram.observe b 1000.0 done;
  Obs.Histogram.merge_into ~src:a ~dst:b;
  Alcotest.(check int) "merged count" 8 (Obs.Histogram.count b);
  Alcotest.(check int) "src unchanged" 5 (Obs.Histogram.count a);
  Alcotest.(check (float 0.5)) "merged sum" 3050.0 (Obs.Histogram.sum b)

(* observe is an atomic fetch-and-add per cell: hammering one histogram
   from every domain must lose nothing *)
let test_histogram_concurrent_observes () =
  let h = Obs.Histogram.make "test.obs.hist_conc" in
  Obs.Histogram.reset h;
  let per_task = 1000 in
  Par.Pool.with_pool ~domains:4 (fun pool ->
      ignore
        (Par.Pool.map_array pool
           (fun seed ->
             for i = 1 to per_task do
               Obs.Histogram.observe h (float_of_int ((seed * i mod 977) + 1))
             done)
           (Array.init 8 (fun i -> i + 1))));
  Alcotest.(check int) "no lost observations" (8 * per_task)
    (Obs.Histogram.count h)

(* --- counter parity across pool widths --------------------------------- *)

(* The solver counters count units of work, not wall time; for a
   deterministic workload the totals must be identical at any domain
   count. Only the per-domain task-distribution counters may differ. *)
let test_counter_parity_across_domains () =
  let p1 = Par.Pool.create ~domains:1 () in
  let p2 = Par.Pool.create ~domains:2 () in
  let work pool =
    let g = Workloads.Filters.diffeq () in
    ignore
      (Core.Experiments.run_benchmark ~pool ~name:"diffeq"
         ~seed:(Core.Experiments.seed_of_name "diffeq")
         ~algorithms:Core.Experiments.table2_algorithms g)
  in
  let stable snap =
    List.filter
      (fun (name, _) ->
        not (String.length name >= 17 && String.sub name 0 17 = "pool.tasks.domain"))
      snap
  in
  fresh ();
  work p1;
  let snap1 = stable (Obs.Counter.snapshot ()) in
  fresh ();
  work p2;
  let snap2 = stable (Obs.Counter.snapshot ()) in
  Par.Pool.shutdown p1;
  Par.Pool.shutdown p2;
  Alcotest.(check bool) "some kernel work was counted" true
    (match List.assoc_opt "kernel.solves" snap1 with
    | Some n -> n > 0
    | None -> false);
  Alcotest.(check (list (pair string int)))
    "counters identical at 1 and 2 domains" snap1 snap2

(* Spans recorded inside pool tasks land as per-domain roots, not
   misattached under another domain's open span. *)
let test_spans_from_pool_tasks () =
  fresh ();
  let pool = Par.Pool.create ~domains:2 () in
  with_tracing true (fun () ->
      ignore
        (Par.Pool.map_array pool
           (fun i -> Obs.Span.with_ "task" (fun () -> i * i))
           (Array.init 8 (fun i -> i))));
  Par.Pool.shutdown pool;
  let roots = Obs.Span.roots () in
  Alcotest.(check int) "one root per task" 8 (List.length roots);
  List.iter
    (fun (_, s) ->
      Alcotest.(check string) "all named task" "task" s.Obs.Span.name)
    roots

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "obs"
    [
      ( "spans",
        [
          quick "nesting and depth" test_span_nesting;
          quick "exception still recorded" test_span_exception_still_recorded;
          quick "disabled mode records nothing" test_disabled_spans_allocate_nothing;
          quick "pool tasks become per-domain roots" test_spans_from_pool_tasks;
        ] );
      ( "registries",
        [
          quick "counter monotonicity" test_counter_monotonic;
          quick "gauge overwrite" test_gauge_overwrites;
        ] );
      ( "histograms",
        [
          quick "buckets and quantiles" test_histogram_buckets_and_quantiles;
          quick "empty-quantile contract" test_histogram_empty_quantile_contract;
          quick "merge and registry" test_histogram_merge_and_registry;
          quick "concurrent observes" test_histogram_concurrent_observes;
        ] );
      ( "json",
        [
          quick "document round trip" test_json_round_trip;
          quick "trace round trip" test_trace_round_trip;
        ] );
      ( "parity",
        [ quick "1 vs 2 domains" test_counter_parity_across_domains ] );
    ]
