(* Coverage for the smaller reporting/facade pieces: Report, Svg_chart,
   Synthesis dispatch, expansion caps, Config corner cases. *)

open Helpers

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

(* --- Report ------------------------------------------------------------- *)

let test_report_render_alignment () =
  let out =
    Core.Report.render ~title:"t" ~header:[ "a"; "bb" ]
      [ [ "xxx"; "y" ]; [ "z" ] ]
  in
  let lines = String.split_on_char '\n' out in
  (match lines with
  | _title :: header :: sep :: _ ->
      Alcotest.(check int) "separator matches header width"
        (String.length header) (String.length sep)
  | _ -> Alcotest.fail "unexpected layout");
  Alcotest.(check bool) "ragged row tolerated" true (contains out "z")

let test_report_percent () =
  Alcotest.(check string) "reduction" "25.0%"
    (Core.Report.percent ~baseline:(Some 100) ~value:75);
  Alcotest.(check string) "negative reduction" "-10.0%"
    (Core.Report.percent ~baseline:(Some 100) ~value:110);
  Alcotest.(check string) "no baseline" "-"
    (Core.Report.percent ~baseline:None ~value:5);
  Alcotest.(check string) "zero baseline" "-"
    (Core.Report.percent ~baseline:(Some 0) ~value:5);
  Alcotest.(check string) "missing cost" "-" (Core.Report.cost_cell None);
  Alcotest.(check string) "present cost" "7" (Core.Report.cost_cell (Some 7))

(* --- Svg_chart ----------------------------------------------------------- *)

let test_line_chart_structure () =
  let svg =
    Core.Svg_chart.line_chart ~title:"T & <chart>" ~x_label:"x" ~y_label:"y"
      [
        { Core.Svg_chart.label = "s1"; points = [ (1.0, 10.0); (3.0, 5.0) ] };
        { Core.Svg_chart.label = "s2"; points = [ (2.0, 8.0) ] };
      ]
  in
  Alcotest.(check bool) "svg root" true (contains svg "<svg ");
  Alcotest.(check bool) "closes" true (contains svg "</svg>");
  Alcotest.(check bool) "escapes title" true (contains svg "T &amp; &lt;chart&gt;");
  Alcotest.(check bool) "legend entries" true (contains svg ">s1<" && contains svg ">s2<");
  Alcotest.(check bool) "polyline path" true (contains svg "<path d=\"M");
  Alcotest.(check bool) "data markers" true (contains svg "<circle")

let test_line_chart_empty_rejected () =
  Alcotest.check_raises "no points"
    (Invalid_argument "Svg_chart.line_chart: no points") (fun () ->
      ignore
        (Core.Svg_chart.line_chart ~title:"t" ~x_label:"x" ~y_label:"y"
           [ { Core.Svg_chart.label = "s"; points = [] } ]))

let test_bar_chart_structure () =
  let svg =
    Core.Svg_chart.bar_chart ~title:"bars" ~y_label:"%"
      [ ("a", 5.0); ("b", -2.0); ("c", 0.0) ]
  in
  Alcotest.(check bool) "three bars + background" true
    (let count = ref 0 in
     let nl = String.length "<rect " in
     for i = 0 to String.length svg - nl do
       if String.sub svg i nl = "<rect " then incr count
     done;
     !count = 4);
  Alcotest.(check bool) "labels present" true
    (contains svg ">a<" && contains svg ">b<" && contains svg ">c<")

let test_degenerate_single_point () =
  (* a single point must not divide by zero *)
  let svg =
    Core.Svg_chart.line_chart ~title:"p" ~x_label:"x" ~y_label:"y"
      [ { Core.Svg_chart.label = "s"; points = [ (2.0, 2.0) ] } ]
  in
  Alcotest.(check bool) "renders" true (contains svg "<circle")

(* --- Synthesis dispatch -------------------------------------------------- *)

let test_all_algorithms_run_on_diamond () =
  let g = diamond () in
  let tbl =
    table lib3
      [
        ([ 1; 2; 3 ], [ 10; 6; 2 ]);
        ([ 1; 2; 4 ], [ 12; 7; 3 ]);
        ([ 2; 3; 5 ], [ 9; 4; 1 ]);
        ([ 1; 3; 4 ], [ 8; 5; 2 ]);
      ]
  in
  let deadline = 9 in
  List.iter
    (fun algo ->
      if algo <> Core.Synthesis.Tree (* diamond is not a forest *) then
        match
          (Core.Synthesis.solve
             (Core.Synthesis.request ~algorithm:algo ~deadline g tbl))
            .Core.Synthesis.result
        with
        | Some r ->
            Alcotest.(check bool)
              (Core.Synthesis.algorithm_name algo ^ " feasible")
              true
              (Assign.Assignment.is_feasible g tbl r.Core.Synthesis.assignment
                 ~deadline)
        | None -> Alcotest.failf "%s failed" (Core.Synthesis.algorithm_name algo))
    Core.Synthesis.all_algorithms

let test_algorithm_names_unique () =
  let names = List.map Core.Synthesis.algorithm_name Core.Synthesis.all_algorithms in
  Alcotest.(check int) "unique" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_pp_result_mentions_everything () =
  let g = diamond () in
  let tbl =
    table lib2
      [ ([ 1; 2 ], [ 6; 2 ]); ([ 2; 3 ], [ 7; 3 ]); ([ 2; 4 ], [ 8; 2 ]); ([ 1; 2 ], [ 5; 1 ]) ]
  in
  match
    (Core.Synthesis.solve
       (Core.Synthesis.request ~algorithm:Core.Synthesis.Greedy ~deadline:6 g
          tbl))
      .Core.Synthesis.result
  with
  | None -> Alcotest.fail "feasible"
  | Some r ->
      let s = Format.asprintf "%a" (Core.Synthesis.pp_result ~graph:g ~table:tbl) r in
      List.iter
        (fun needle ->
          Alcotest.(check bool) (needle ^ " present") true (contains s needle))
        [ "algorithm"; "cost"; "makespan"; "config"; "registers"; "per-FU" ]

(* --- Expansion caps ------------------------------------------------------ *)

let test_expansion_cap_propagates () =
  (* chain of diamonds explodes; the heuristics surface Too_large rather
     than hanging *)
  let d = 18 in
  let edges =
    List.concat
      (List.init d (fun i ->
           let base = 3 * i in
           [ (base, base + 1); (base, base + 2); (base + 1, base + 3); (base + 2, base + 3) ]))
  in
  let g = graph ((3 * d) + 1) edges in
  let rng = Workloads.Prng.create 1 in
  let tbl =
    Workloads.Tables.random_tradeoff rng ~library:lib2
      ~num_nodes:(Dfg.Graph.num_nodes g)
  in
  Alcotest.check_raises "once hits the cap" (Dfg.Expand.Too_large 1000)
    (fun () ->
      ignore (Assign.Dfg_assign.once ~max_nodes:1000 g tbl ~deadline:100))

(* --- Config corners ------------------------------------------------------ *)

let test_config_corners () =
  Alcotest.(check string) "empty config" "" (Sched.Config.to_string [||]);
  Alcotest.(check int) "empty total" 0 (Sched.Config.total [||]);
  Alcotest.(check bool) "length mismatch never dominates" false
    (Sched.Config.dominates [| 1 |] [| 1; 0 |])

let () =
  Alcotest.run "misc"
    [
      ( "report",
        [
          quick "render alignment" test_report_render_alignment;
          quick "percent formatting" test_report_percent;
        ] );
      ( "svg_chart",
        [
          quick "line chart" test_line_chart_structure;
          quick "empty rejected" test_line_chart_empty_rejected;
          quick "bar chart" test_bar_chart_structure;
          quick "single point" test_degenerate_single_point;
        ] );
      ( "synthesis",
        [
          quick "all algorithms run" test_all_algorithms_run_on_diamond;
          quick "names unique" test_algorithm_names_unique;
          quick "pp_result complete" test_pp_result_mentions_everything;
        ] );
      ( "caps/corners",
        [
          quick "expansion cap propagates" test_expansion_cap_propagates;
          quick "config corners" test_config_corners;
        ] );
    ]
