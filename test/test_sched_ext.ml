(* Tests for binding, resource-constrained list scheduling, and rotation
   scheduling. *)

open Helpers

let diamond_setup () =
  ( diamond (),
    table lib2
      [
        ([ 1; 2 ], [ 6; 2 ]);
        ([ 2; 3 ], [ 7; 3 ]);
        ([ 2; 4 ], [ 8; 2 ]);
        ([ 1; 2 ], [ 5; 1 ]);
      ] )

(* --- Binding ----------------------------------------------------------- *)

let test_binding_diamond () =
  let g, tbl = diamond_setup () in
  ignore g;
  let s = { Sched.Schedule.start = [| 0; 1; 1; 3 |]; assignment = [| 0; 0; 0; 0 |] } in
  let b = Sched.Binding.bind tbl s in
  Alcotest.(check bool) "valid" true (Sched.Binding.is_valid tbl s b);
  Alcotest.(check (array int)) "instances = peak usage"
    (Sched.Schedule.peak_usage tbl s)
    b.Sched.Binding.config;
  (* v1 and v2 overlap: distinct instances *)
  Alcotest.(check bool) "overlapping nodes split" true
    (b.Sched.Binding.instance.(1) <> b.Sched.Binding.instance.(2));
  (* v0 and v3 can share with one of them *)
  Alcotest.(check int) "v0 on instance 0" 0 b.Sched.Binding.instance.(0)

let test_binding_is_valid_detects_conflict () =
  let _, tbl = diamond_setup () in
  let s = { Sched.Schedule.start = [| 0; 1; 1; 3 |]; assignment = [| 0; 0; 0; 0 |] } in
  let bogus = { Sched.Binding.instance = [| 0; 0; 0; 0 |]; config = [| 1; 0 |] } in
  Alcotest.(check bool) "conflict detected" false
    (Sched.Binding.is_valid tbl s bogus)

let test_binding_matches_min_resource_on_benchmarks () =
  List.iter
    (fun (name, g) ->
      let rng = Workloads.Prng.create 37 in
      let tbl = Workloads.Tables.for_graph rng ~library:lib3 g in
      let deadline = Assign.Assignment.min_makespan g tbl + 5 in
      match Assign.Dfg_assign.repeat g tbl ~deadline with
      | None -> Alcotest.failf "%s infeasible" name
      | Some a -> (
          match Sched.Min_resource.run g tbl a ~deadline with
          | None -> Alcotest.failf "%s scheduling failed" name
          | Some { Sched.Min_resource.schedule; config; _ } ->
              let b = Sched.Binding.bind tbl schedule in
              Alcotest.(check bool) (name ^ ": binding valid") true
                (Sched.Binding.is_valid tbl schedule b);
              Alcotest.(check (array int))
                (name ^ ": binding config = schedule config")
                config b.Sched.Binding.config))
    (Workloads.Filters.all ())

let test_binding_pp () =
  let g, tbl = diamond_setup () in
  let s = { Sched.Schedule.start = [| 0; 1; 1; 3 |]; assignment = [| 0; 0; 0; 0 |] } in
  let b = Sched.Binding.bind tbl s in
  let out = Format.asprintf "%a" (Sched.Binding.pp ~graph:g ~table:tbl ~schedule:s) b in
  Alcotest.(check bool) "mentions an FU row" true
    (String.length out > 0 && String.sub out 0 1 = "A")

(* --- Resource-constrained list scheduling ------------------------------ *)

let test_rc_serialises_under_one_fu () =
  let g = graph 3 [] in
  let tbl = table lib2 (List.init 3 (fun _ -> ([ 2; 2 ], [ 1; 1 ]))) in
  let a = Array.make 3 0 in
  (match Sched.Resource_constrained.makespan g tbl a ~config:[| 1; 0 |] with
  | Some l -> Alcotest.(check int) "serial" 6 l
  | None -> Alcotest.fail "feasible");
  match Sched.Resource_constrained.makespan g tbl a ~config:[| 3; 0 |] with
  | Some l -> Alcotest.(check int) "parallel" 2 l
  | None -> Alcotest.fail "feasible"

let test_rc_zero_instances () =
  let g = graph 1 [] in
  let tbl = table lib2 [ ([ 1; 1 ], [ 1; 1 ]) ] in
  Alcotest.(check bool) "unusable config" true
    (Sched.Resource_constrained.run g tbl [| 0 |] ~config:[| 0; 5 |] = None);
  (* a type with zero instances that no node uses is fine *)
  Alcotest.(check bool) "unused type may be absent" true
    (Sched.Resource_constrained.run g tbl [| 0 |] ~config:[| 1; 0 |] <> None)

let test_rc_respects_everything () =
  let rng = Workloads.Prng.create 43 in
  for trial = 1 to 25 do
    let n = 2 + Workloads.Prng.int rng 12 in
    let g = Workloads.Random_dfg.random_dag rng ~n ~extra_edges:3 in
    let tbl = Workloads.Tables.random_tradeoff rng ~library:lib3 ~num_nodes:n in
    let a = Array.init n (fun _ -> Workloads.Prng.int rng 3) in
    let config = Array.init 3 (fun _ -> 1 + Workloads.Prng.int rng 2) in
    match Sched.Resource_constrained.run g tbl a ~config with
    | None -> Alcotest.failf "trial %d: positive config must schedule" trial
    | Some s ->
        Alcotest.(check bool)
          (Printf.sprintf "trial %d precedence" trial)
          true
          (Sched.Schedule.respects_precedence g tbl s);
        Alcotest.(check bool)
          (Printf.sprintf "trial %d capacity" trial)
          true
          (Sched.Schedule.fits tbl s ~config)
  done

let test_rc_never_beats_critical_path () =
  let g, tbl = diamond_setup () in
  let a = [| 0; 0; 0; 0 |] in
  match Sched.Resource_constrained.makespan g tbl a ~config:[| 4; 4 |] with
  | Some l ->
      Alcotest.(check int) "critical path is the floor"
        (Assign.Assignment.makespan g tbl a)
        l
  | None -> Alcotest.fail "feasible"

(* --- Rotation ----------------------------------------------------------- *)

let correlator () =
  graph_with_delays 3 [ (0, 1, 0); (1, 2, 0); (2, 0, 2) ]

let test_rotation_improves_correlator () =
  let g = correlator () in
  let tbl = table lib2 (List.init 3 (fun _ -> ([ 2; 2 ], [ 1; 1 ]))) in
  let a = [| 0; 0; 0 |] in
  let config = [| 1; 0 |] in
  match Sched.Rotation.run g tbl a ~config ~rotations:6 with
  | None -> Alcotest.fail "feasible"
  | Some res ->
      (* static schedule of 3 chained 2-cycle nodes = 6; one FU bounds the
         period below by total work / instances = 6, so rotation cannot
         improve with 1 FU... *)
      Alcotest.(check bool) "period >= work bound" true
        (res.Sched.Rotation.period >= 6);
      (* ... but with 2 FUs the retimed DAG portions get shorter *)
      let config2 = [| 2; 0 |] in
      (match Sched.Rotation.run g tbl a ~config:config2 ~rotations:6 with
      | None -> Alcotest.fail "feasible"
      | Some res2 ->
          Alcotest.(check bool)
            (Printf.sprintf "rotated %d < static 6" res2.Sched.Rotation.period)
            true
            (res2.Sched.Rotation.period < 6);
          (* the result is internally consistent *)
          Alcotest.(check bool) "retiming legal on original" true
            (Dfg.Cyclic.is_legal g res2.Sched.Rotation.retiming);
          Alcotest.(check int) "schedule length = period"
            res2.Sched.Rotation.period
            (Sched.Schedule.length tbl res2.Sched.Rotation.schedule);
          Alcotest.(check bool) "schedule valid on retimed graph" true
            (Sched.Schedule.respects_precedence res2.Sched.Rotation.graph tbl
               res2.Sched.Rotation.schedule))

let test_rotation_never_worse_than_static () =
  List.iter
    (fun (name, g) ->
      let rng = Workloads.Prng.create 47 in
      let tbl = Workloads.Tables.for_graph rng ~library:lib3 g in
      let a = Assign.Assignment.all_fastest tbl in
      let config = Array.make 3 2 in
      match
        ( Sched.Resource_constrained.makespan g tbl a ~config,
          Sched.Rotation.run g tbl a ~config ~rotations:20 )
      with
      | Some static, Some res ->
          if res.Sched.Rotation.period > static then
            Alcotest.failf "%s: rotation made it worse" name
      | _ -> Alcotest.failf "%s: scheduling failed" name)
    (Workloads.Filters.all ())

let test_rotation_retiming_consistent () =
  (* the cumulative retiming must be legal on the original graph and must
     reproduce exactly the graph the best schedule was computed on (delay
     sums around every cycle are then preserved by construction) *)
  let g = Workloads.Filters.lattice ~stages:4 in
  let rng = Workloads.Prng.create 53 in
  let tbl = Workloads.Tables.for_graph rng ~library:lib3 g in
  let a = Assign.Assignment.all_fastest tbl in
  match Sched.Rotation.run g tbl a ~config:[| 2; 2; 2 |] ~rotations:10 with
  | None -> Alcotest.fail "feasible"
  | Some res ->
      Alcotest.(check bool) "legal" true
        (Dfg.Cyclic.is_legal g res.Sched.Rotation.retiming);
      let reapplied = Dfg.Cyclic.apply g res.Sched.Rotation.retiming in
      let edges gr =
        List.sort compare
          (List.map
             (fun { Dfg.Graph.src; dst; delay; _ } -> (src, dst, delay))
             (Dfg.Graph.edges gr))
      in
      Alcotest.(check (list (triple int int int)))
        "retiming reproduces the returned graph" (edges reapplied)
        (edges res.Sched.Rotation.graph)

let test_rotation_zero_rotations_is_static () =
  let g, tbl = diamond_setup () in
  let a = [| 0; 0; 0; 0 |] in
  match
    ( Sched.Rotation.run g tbl a ~config:[| 2; 2 |] ~rotations:0,
      Sched.Resource_constrained.makespan g tbl a ~config:[| 2; 2 |] )
  with
  | Some res, Some static ->
      Alcotest.(check int) "same" static res.Sched.Rotation.period
  | _ -> Alcotest.fail "feasible"

(* --- Min_config's priority queue ---------------------------------------- *)

let test_pq_fifo_ties () =
  let q = Sched.Min_config.Pq.create () in
  Sched.Min_config.Pq.push q 2 "first-at-2";
  Sched.Min_config.Pq.push q 1 "first-at-1";
  Sched.Min_config.Pq.push q 2 "second-at-2";
  Sched.Min_config.Pq.push q 1 "second-at-1";
  Sched.Min_config.Pq.push q 2 "third-at-2";
  let drain () =
    let rec go acc =
      match Sched.Min_config.Pq.pop q with
      | Some (p, x) -> go ((p, x) :: acc)
      | None -> List.rev acc
    in
    go []
  in
  Alcotest.(check (list (pair int string)))
    "lowest priority first, FIFO within ties"
    [
      (1, "first-at-1");
      (1, "second-at-1");
      (2, "first-at-2");
      (2, "second-at-2");
      (2, "third-at-2");
    ]
    (drain ());
  Alcotest.(check bool) "empty after drain"
    (Sched.Min_config.Pq.pop q = None) true

let test_pq_interleaved () =
  (* FIFO survives interleaved pushes and pops within a bucket *)
  let q = Sched.Min_config.Pq.create () in
  Sched.Min_config.Pq.push q 5 "a";
  Sched.Min_config.Pq.push q 5 "b";
  Alcotest.(check (option (pair int string))) "pop a" (Some (5, "a"))
    (Sched.Min_config.Pq.pop q);
  Sched.Min_config.Pq.push q 5 "c";
  Sched.Min_config.Pq.push q 4 "d";
  Alcotest.(check (option (pair int string))) "lower priority overtakes"
    (Some (4, "d"))
    (Sched.Min_config.Pq.pop q);
  Alcotest.(check (option (pair int string))) "pop b" (Some (5, "b"))
    (Sched.Min_config.Pq.pop q);
  Alcotest.(check (option (pair int string))) "pop c" (Some (5, "c"))
    (Sched.Min_config.Pq.pop q);
  Alcotest.(check (option (pair int string))) "empty" None
    (Sched.Min_config.Pq.pop q)

let test_min_config_deterministic_tie () =
  (* two independent chains, two types with symmetric costs: several
     configurations share the minimal total; the solver must return the
     same one however the search happened to enqueue ties, i.e. the first
     in generation order from the lower bound *)
  let g = graph 4 [ (0, 1); (2, 3) ] in
  let tbl =
    table lib2
      [
        ([ 1; 2 ], [ 4; 1 ]);
        ([ 1; 2 ], [ 4; 1 ]);
        ([ 1; 2 ], [ 4; 1 ]);
        ([ 1; 2 ], [ 4; 1 ]);
      ]
  in
  let a = [| 0; 1; 1; 0 |] in
  match Sched.Min_config.solve g tbl a ~deadline:3 with
  | None -> Alcotest.fail "feasible instance reported infeasible"
  | Some (config, schedule, total) ->
      Alcotest.(check int) "objective is the config total"
        (Sched.Config.total config) total;
      Alcotest.(check bool) "witness schedule fits" true
        (Sched.Schedule.fits tbl schedule ~config);
      (* pin the deterministic choice: re-solving yields the same config *)
      (match Sched.Min_config.solve g tbl a ~deadline:3 with
      | Some (config', _, _) ->
          Alcotest.(check string) "re-solve identical"
            (Sched.Config.to_string config)
            (Sched.Config.to_string config')
      | None -> Alcotest.fail "re-solve failed")

let () =
  Alcotest.run "sched.extensions"
    [
      ( "binding",
        [
          quick "diamond" test_binding_diamond;
          quick "conflict detection" test_binding_is_valid_detects_conflict;
          quick "benchmarks" test_binding_matches_min_resource_on_benchmarks;
          quick "pp" test_binding_pp;
        ] );
      ( "resource_constrained",
        [
          quick "serialise vs parallel" test_rc_serialises_under_one_fu;
          quick "zero instances" test_rc_zero_instances;
          quick "random instances valid" test_rc_respects_everything;
          quick "critical-path floor" test_rc_never_beats_critical_path;
        ] );
      ( "rotation",
        [
          quick "correlator" test_rotation_improves_correlator;
          quick "never worse than static" test_rotation_never_worse_than_static;
          quick "retiming consistency" test_rotation_retiming_consistent;
          quick "zero rotations" test_rotation_zero_rotations_is_static;
        ] );
      ( "min_config.pq",
        [
          quick "fifo within ties" test_pq_fifo_ties;
          quick "interleaved push/pop" test_pq_interleaved;
          quick "deterministic tie config" test_min_config_deterministic_tie;
        ] );
    ]
