open Helpers

let test_prng_deterministic () =
  let a = Workloads.Prng.create 42 and b = Workloads.Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Workloads.Prng.int a 1000) (Workloads.Prng.int b 1000)
  done

let test_prng_bounds () =
  let rng = Workloads.Prng.create 7 in
  for _ = 1 to 1000 do
    let v = Workloads.Prng.int_in rng 5 9 in
    Alcotest.(check bool) "in [5,9]" true (v >= 5 && v <= 9);
    let f = Workloads.Prng.float rng in
    Alcotest.(check bool) "in [0,1)" true (f >= 0.0 && f < 1.0)
  done;
  Alcotest.check_raises "bad bound" (Invalid_argument "Prng.int: non-positive bound")
    (fun () -> ignore (Workloads.Prng.int rng 0))

let test_prng_split_independent () =
  let rng = Workloads.Prng.create 1 in
  let child = Workloads.Prng.split rng in
  let xs = List.init 20 (fun _ -> Workloads.Prng.int rng 1000) in
  let ys = List.init 20 (fun _ -> Workloads.Prng.int child 1000) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let test_prng_rough_uniformity () =
  let rng = Workloads.Prng.create 9 in
  let buckets = Array.make 10 0 in
  let n = 20_000 in
  for _ = 1 to n do
    let b = Workloads.Prng.int rng 10 in
    buckets.(b) <- buckets.(b) + 1
  done;
  Array.iteri
    (fun i c ->
      Alcotest.(check bool)
        (Printf.sprintf "bucket %d near uniform" i)
        true
        (abs (c - (n / 10)) < n / 20))
    buckets

let check_benchmark_shape name g ~nodes ~tree =
  Alcotest.(check int) (name ^ ": node count") nodes (Dfg.Graph.num_nodes g);
  let is_tree_somehow =
    Dfg.Graph.is_tree g || Dfg.Graph.is_tree (Dfg.Transpose.transpose g)
  in
  Alcotest.(check bool) (name ^ ": tree-ness") tree is_tree_somehow

let test_benchmark_shapes () =
  check_benchmark_shape "lattice4" (Workloads.Filters.lattice ~stages:4) ~nodes:17 ~tree:true;
  check_benchmark_shape "lattice8" (Workloads.Filters.lattice ~stages:8) ~nodes:33 ~tree:true;
  check_benchmark_shape "volterra" (Workloads.Filters.volterra ()) ~nodes:27 ~tree:true;
  check_benchmark_shape "diffeq" (Workloads.Filters.diffeq ()) ~nodes:11 ~tree:false;
  check_benchmark_shape "rls" (Workloads.Filters.rls_laguerre ()) ~nodes:18 ~tree:false;
  check_benchmark_shape "elliptic" (Workloads.Filters.elliptic ()) ~nodes:34 ~tree:false

let test_elliptic_operation_mix () =
  let g = Workloads.Filters.elliptic () in
  let count op =
    let n = ref 0 in
    for v = 0 to Dfg.Graph.num_nodes g - 1 do
      if Dfg.Graph.op g v = op then incr n
    done;
    !n
  in
  Alcotest.(check int) "26 additions" 26 (count "add");
  Alcotest.(check int) "8 multiplications" 8 (count "mul")

let test_elliptic_duplicated_nodes () =
  let g = Workloads.Filters.elliptic () in
  let _, tree = Assign.Dfg_assign.choose_tree g in
  Alcotest.(check int) "9 duplicated nodes (as the paper reports)" 9
    (List.length (Dfg.Expand.duplicated_nodes tree))

let test_benchmarks_have_feedback_delays () =
  List.iter
    (fun (name, g) ->
      let has_delay =
        List.exists (fun { Dfg.Graph.delay; _ } -> delay > 0) (Dfg.Graph.edges g)
      in
      (* volterra is the only feed-forward benchmark *)
      Alcotest.(check bool)
        (name ^ " feedback")
        (name <> "volterra")
        has_delay)
    (Workloads.Filters.all ())

let test_lattice_invalid () =
  Alcotest.check_raises "0 stages" (Invalid_argument "Filters.lattice: stages < 1")
    (fun () -> ignore (Workloads.Filters.lattice ~stages:0))

let test_random_tree_is_tree () =
  let rng = Workloads.Prng.create 3 in
  for _ = 1 to 20 do
    let n = 1 + Workloads.Prng.int rng 40 in
    let g = Workloads.Random_dfg.random_tree rng ~n ~max_children:3 in
    Alcotest.(check int) "size" n (Dfg.Graph.num_nodes g);
    Alcotest.(check bool) "is tree" true (Dfg.Graph.is_tree g);
    List.iter
      (fun v ->
        Alcotest.(check bool) "child cap" true (Dfg.Graph.dag_out_degree g v <= 3))
      (List.init n (fun i -> i))
  done

let test_random_dag_connected_and_acyclic () =
  let rng = Workloads.Prng.create 4 in
  for _ = 1 to 20 do
    let n = 2 + Workloads.Prng.int rng 30 in
    let g = Workloads.Random_dfg.random_dag rng ~n ~extra_edges:5 in
    (* acyclicity enforced by the graph constructor; single root component:
       every node except 0 has a parent *)
    for v = 1 to n - 1 do
      Alcotest.(check bool) "has parent" true (Dfg.Graph.dag_in_degree g v >= 1)
    done
  done

let test_random_layered_shape () =
  let rng = Workloads.Prng.create 5 in
  let g = Workloads.Random_dfg.random_layered rng ~layers:4 ~width:3 ~edge_prob:0.4 in
  Alcotest.(check int) "12 nodes" 12 (Dfg.Graph.num_nodes g);
  (* every non-final-layer node reaches the next layer *)
  for v = 0 to (3 * 3) - 1 do
    Alcotest.(check bool) "has successor" true (Dfg.Graph.dag_out_degree g v >= 1)
  done

let test_tradeoff_tables_monotone () =
  let rng = Workloads.Prng.create 6 in
  let tbl = Workloads.Tables.random_tradeoff rng ~library:lib3 ~num_nodes:30 in
  for v = 0 to 29 do
    for t = 1 to 2 do
      Alcotest.(check bool) "times increase" true
        (Fulib.Table.time tbl ~node:v ~ftype:t > Fulib.Table.time tbl ~node:v ~ftype:(t - 1));
      Alcotest.(check bool) "costs decrease" true
        (Fulib.Table.cost tbl ~node:v ~ftype:t < Fulib.Table.cost tbl ~node:v ~ftype:(t - 1))
    done
  done

let test_for_graph_muls_slower () =
  (* multiplications start no faster than the fastest addition base: check
     statistically that the mul base range [2,4] dominates the add range
     [1,2] on the fastest type *)
  let g = Workloads.Filters.elliptic () in
  let rng = Workloads.Prng.create 8 in
  let tbl = Workloads.Tables.for_graph rng ~library:lib3 g in
  for v = 0 to Dfg.Graph.num_nodes g - 1 do
    let t0 = Fulib.Table.time tbl ~node:v ~ftype:0 in
    match Dfg.Graph.op g v with
    | "mul" -> Alcotest.(check bool) "mul base >= 2" true (t0 >= 2 && t0 <= 4)
    | _ -> Alcotest.(check bool) "add base <= 2" true (t0 >= 1 && t0 <= 2)
  done

let test_arbitrary_tables_in_range () =
  let rng = Workloads.Prng.create 10 in
  let tbl =
    Workloads.Tables.random_arbitrary rng ~library:lib2 ~num_nodes:20 ~max_time:5 ~max_cost:9
  in
  for v = 0 to 19 do
    for t = 0 to 1 do
      let time = Fulib.Table.time tbl ~node:v ~ftype:t in
      let cost = Fulib.Table.cost tbl ~node:v ~ftype:t in
      Alcotest.(check bool) "time in [1,5]" true (time >= 1 && time <= 5);
      Alcotest.(check bool) "cost in [0,9]" true (cost >= 0 && cost <= 9)
    done
  done

let () =
  Alcotest.run "workloads"
    [
      ( "prng",
        [
          quick "deterministic" test_prng_deterministic;
          quick "bounds" test_prng_bounds;
          quick "split" test_prng_split_independent;
          quick "rough uniformity" test_prng_rough_uniformity;
        ] );
      ( "filters",
        [
          quick "benchmark shapes" test_benchmark_shapes;
          quick "elliptic op mix" test_elliptic_operation_mix;
          quick "elliptic duplicated nodes" test_elliptic_duplicated_nodes;
          quick "feedback delays" test_benchmarks_have_feedback_delays;
          quick "lattice validation" test_lattice_invalid;
        ] );
      ( "random graphs",
        [
          quick "random trees" test_random_tree_is_tree;
          quick "random DAGs" test_random_dag_connected_and_acyclic;
          quick "layered DAGs" test_random_layered_shape;
        ] );
      ( "tables",
        [
          quick "tradeoff monotone" test_tradeoff_tables_monotone;
          quick "op-aware bases" test_for_graph_muls_slower;
          quick "arbitrary in range" test_arbitrary_tables_in_range;
        ] );
    ]
