(* Second property suite: invariants of the extension subsystems (binding,
   resource-constrained scheduling, overlapped schedules, registers,
   netlists, frontiers, exact schedulability). *)

let of_seed f =
  (QCheck.make ~print:string_of_int QCheck.Gen.(map abs int), f)

let prop name count (arb, f) =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)

let dag_instance ?(max_nodes = 10) seed =
  let rng = Workloads.Prng.create seed in
  let n = 1 + Workloads.Prng.int rng max_nodes in
  let g = Workloads.Random_dfg.random_dag rng ~n ~extra_edges:3 in
  let tbl = Workloads.Tables.random_tradeoff rng ~library:Helpers.lib3 ~num_nodes:n in
  (rng, g, tbl)

let scheduled_instance seed =
  let rng, g, tbl = dag_instance seed in
  let a = Assign.Assignment.all_fastest tbl in
  let deadline =
    Assign.Assignment.makespan g tbl a + Workloads.Prng.int rng 6
  in
  match Sched.Min_resource.run g tbl a ~deadline with
  | Some { Sched.Min_resource.schedule; config; _ } ->
      (g, tbl, schedule, config, deadline)
  | None -> assert false (* all-fastest at its own makespan always works *)

let binding_valid =
  of_seed (fun seed ->
      let g, tbl, s, config, _ = scheduled_instance seed in
      ignore g;
      let b = Sched.Binding.bind tbl s in
      Sched.Binding.is_valid tbl s b
      && Sched.Config.dominates config b.Sched.Binding.config
      && b.Sched.Binding.config = Sched.Schedule.peak_usage tbl s)

let resource_constrained_valid =
  of_seed (fun seed ->
      let rng, g, tbl = dag_instance seed in
      let n = Dfg.Graph.num_nodes g in
      let a = Array.init n (fun _ -> Workloads.Prng.int rng 3) in
      let config = Array.init 3 (fun _ -> 1 + Workloads.Prng.int rng 2) in
      match Sched.Resource_constrained.run g tbl a ~config with
      | None -> false
      | Some s ->
          Sched.Schedule.respects_precedence g tbl s
          && Sched.Schedule.fits tbl s ~config)

let min_period_tight =
  of_seed (fun seed ->
      let g, tbl, s, _, _ = scheduled_instance seed in
      let p = Sched.Cyclic_schedule.min_period g tbl s in
      let legal_at_p = Sched.Cyclic_schedule.is_legal_period g tbl s ~period:p in
      (* one step below must break a dependence or the resource bound; the
         dependence part is what is_legal_period checks *)
      let sim =
        Sched.Cyclic_schedule.simulate g tbl s ~period:p ~iterations:4
      in
      legal_at_p && sim.Sched.Cyclic_schedule.ok)

(* min_period agrees with the simulation-based legality oracle on both
   sides: legal at min_period, illegal one step below (when > 1).
   [simulate] only re-checks dependences, so the oracle's other half is
   the resource bound — one iteration's work per period on the schedule's
   peak configuration. Random delays are grafted onto some edges first
   (adding delay only relaxes a dependence, so the schedule stays valid)
   to exercise the dependence bound, not just the resource one. *)
let min_period_is_simulation_minimal =
  of_seed (fun seed ->
      let rng, g, tbl = dag_instance seed in
      let a = Assign.Assignment.all_fastest tbl in
      let deadline =
        Assign.Assignment.makespan g tbl a + Workloads.Prng.int rng 4
      in
      match Sched.Min_resource.run g tbl a ~deadline with
      | None -> false
      | Some { Sched.Min_resource.schedule = s; _ } ->
          let g =
            Dfg.Graph.of_edges ~names:(Dfg.Graph.names g)
              ~ops:(Array.init (Dfg.Graph.num_nodes g) (Dfg.Graph.op g))
              (List.map
                 (fun (e : Dfg.Graph.edge) ->
                   if Workloads.Prng.int rng 3 = 0 then
                     { e with Dfg.Graph.delay = 1 + Workloads.Prng.int rng 2 }
                   else e)
                 (Dfg.Graph.edges g))
          in
          let config = Sched.Schedule.peak_usage tbl s in
          let work = Array.make (Fulib.Table.num_types tbl) 0 in
          Array.iteri
            (fun v t ->
              work.(t) <- work.(t) + Fulib.Table.time tbl ~node:v ~ftype:t)
            s.Sched.Schedule.assignment;
          let legal period =
            period >= 1
            && (Sched.Cyclic_schedule.simulate g tbl s ~period ~iterations:8)
                 .Sched.Cyclic_schedule.ok
            && Array.for_all2
                 (fun w c -> w = 0 || w <= period * c)
                 work config
          in
          let p = Sched.Cyclic_schedule.min_period g tbl s in
          legal p && (p = 1 || not (legal (p - 1))))

let simulation_is_legality_oracle =
  of_seed (fun seed ->
      let rng, g, tbl = dag_instance ~max_nodes:8 seed in
      let a = Assign.Assignment.all_fastest tbl in
      let deadline = Assign.Assignment.makespan g tbl a in
      match Sched.Min_resource.run g tbl a ~deadline with
      | None -> false
      | Some { Sched.Min_resource.schedule; _ } ->
          let period = 1 + Workloads.Prng.int rng (deadline + 2) in
          let claimed =
            Sched.Cyclic_schedule.is_legal_period g tbl schedule ~period
          in
          let sim =
            Sched.Cyclic_schedule.simulate g tbl schedule ~period ~iterations:5
          in
          claimed = sim.Sched.Cyclic_schedule.ok)

let registers_left_edge_optimal =
  of_seed (fun seed ->
      let g, tbl, s, _, _ = scheduled_instance seed in
      let allocation, count = Sched.Registers.allocate g tbl s in
      count = Sched.Registers.max_live g tbl s
      && List.for_all
           (fun (lt, r) ->
             List.for_all
               (fun (lt', r') ->
                 lt == lt' || r <> r'
                 || lt.Sched.Registers.death <= lt'.Sched.Registers.birth
                 || lt'.Sched.Registers.death <= lt.Sched.Registers.birth)
               allocation)
           allocation)

let netlist_roundtrip =
  of_seed (fun seed ->
      let _, g, tbl = dag_instance seed in
      let g', tbl' = Netlist.of_string (Netlist.to_string ~table:tbl g) in
      let edges gr =
        List.sort compare
          (List.map
             (fun { Dfg.Graph.src; dst; delay; _ } ->
               (Dfg.Graph.name gr src, Dfg.Graph.name gr dst, delay))
             (Dfg.Graph.edges gr))
      in
      edges g = edges g'
      &&
      match tbl' with
      | None -> false
      | Some tbl' ->
          let same = ref (Fulib.Table.num_nodes tbl = Fulib.Table.num_nodes tbl') in
          for v = 0 to Fulib.Table.num_nodes tbl - 1 do
            for k = 0 to Fulib.Table.num_types tbl - 1 do
              if
                Fulib.Table.time tbl ~node:v ~ftype:k
                <> Fulib.Table.time tbl' ~node:v ~ftype:k
                || Fulib.Table.cost tbl ~node:v ~ftype:k
                   <> Fulib.Table.cost tbl' ~node:v ~ftype:k
              then same := false
            done
          done;
          !same)

let frontier_staircase =
  of_seed (fun seed ->
      let _, g, tbl = dag_instance ~max_nodes:7 seed in
      let tmin = Core.Synthesis.min_deadline g tbl in
      let points = Core.Frontier.trace g tbl ~max_deadline:(tmin + 8) in
      let rec ok = function
        | a :: (b :: _ as t) ->
            a.Core.Frontier.deadline < b.Core.Frontier.deadline
            && a.Core.Frontier.cost > b.Core.Frontier.cost
            && ok t
        | _ -> true
      in
      points <> [] && ok points)

let exact_schedule_consistent_with_list =
  of_seed (fun seed ->
      let g, tbl, s, config, deadline = scheduled_instance seed in
      ignore s;
      (* whatever list scheduling achieved, exact search must confirm *)
      let a = Assign.Assignment.all_fastest tbl in
      Sched.Exact_schedule.feasible ~budget:500_000 g tbl a ~config ~deadline)

let dual_binary_search_consistent =
  of_seed (fun seed ->
      let rng = Workloads.Prng.create seed in
      let n = 1 + Workloads.Prng.int rng 7 in
      let g = Workloads.Random_dfg.random_tree rng ~n ~max_children:3 in
      let tbl =
        Workloads.Tables.random_arbitrary rng ~library:Helpers.lib2 ~num_nodes:n
          ~max_time:4 ~max_cost:8
      in
      let budget = Workloads.Prng.int rng 40 in
      match Assign.Dual.for_tree g tbl ~budget with
      | None ->
          (* no assignment fits the budget at any deadline: the cheapest
             assignment must exceed it *)
          Assign.Assignment.total_cost tbl (Assign.Assignment.all_cheapest tbl)
          > budget
      | Some (makespan, a) ->
          Assign.Assignment.total_cost tbl a <= budget
          && Assign.Assignment.makespan g tbl a <= makespan)

let renderers_total =
  of_seed (fun seed ->
      let g, tbl, s, _, _ = scheduled_instance seed in
      let ascii = Sched.Gantt.render ~graph:g ~table:tbl s in
      let svg = Rtl.Svg_gantt.render ~graph:g ~table:tbl s in
      let contains hay needle =
        let nl = String.length needle and hl = String.length hay in
        let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
        go 0
      in
      String.length ascii > 0
      && contains svg "<svg" && contains svg "</svg>"
      (* every node name appears somewhere in the SVG labels *)
      && List.for_all
           (fun v -> contains svg (Dfg.Graph.name g v))
           (List.init (Dfg.Graph.num_nodes g) (fun i -> i)))

let testbench_embeds_interp_values =
  of_seed (fun seed ->
      let g, tbl, s, _, _ = scheduled_instance seed in
      let input v i = ((v * 5) + i) land 15 in
      let resp =
        Rtl.Backend.lower
          (Rtl.Backend.request ~style:Rtl.Backend.Behavioral
             ~testbench_iterations:3 ~stimulus:input g tbl s)
      in
      let tb = Option.get resp.Rtl.Backend.testbench_text in
      let expected = Dfg.Interp.run g ~iterations:3 ~input in
      let contains hay needle =
        let nl = String.length needle and hl = String.length hay in
        let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
        go 0
      in
      (* every output node's final-iteration expectation is embedded *)
      List.for_all
        (fun v ->
          Dfg.Graph.dag_succs g v <> []
          || contains tb (string_of_int (expected.(v).(2) land 0xFFFF)))
        (List.init (Dfg.Graph.num_nodes g) Fun.id))

let () =
  Alcotest.run "properties2"
    [
      ( "scheduling extensions",
        [
          prop "binding always valid and tight" 120 binding_valid;
          prop "resource-constrained schedules valid" 120 resource_constrained_valid;
          prop "min period legal and simulatable" 120 min_period_tight;
          prop "min period minimal against the simulation oracle" 120
            min_period_is_simulation_minimal;
          prop "simulation equals legality" 120 simulation_is_legality_oracle;
          prop "left-edge register allocation optimal" 120 registers_left_edge_optimal;
          prop "exact schedulability confirms list configs" 80 exact_schedule_consistent_with_list;
        ] );
      ( "io / frontier / dual",
        [
          prop "netlist round-trip" 120 netlist_roundtrip;
          prop "frontier is a staircase" 60 frontier_staircase;
          prop "dual solutions within budget" 120 dual_binary_search_consistent;
          prop "gantt/svg renderers total" 80 renderers_total;
          prop "testbench embeds golden values" 80 testbench_embeds_interp_values;
        ] );
    ]
