(* Tests for cyclic (overlapped) schedule analysis and register lifetime
   analysis/allocation. *)

open Helpers

let correlator () =
  graph_with_delays 3 [ (0, 1, 0); (1, 2, 0); (2, 0, 2) ]

let unit_table n = table lib2 (List.init n (fun _ -> ([ 2; 2 ], [ 1; 1 ])))

(* serial schedule of the correlator: v0@0 v1@2 v2@4, each 2 cycles *)
let serial_schedule () =
  { Sched.Schedule.start = [| 0; 2; 4 |]; assignment = [| 0; 0; 0 |] }

let test_legal_period_basic () =
  let g = correlator () in
  let tbl = unit_table 3 in
  let s = serial_schedule () in
  (* full length is always legal *)
  Alcotest.(check bool) "period 6" true
    (Sched.Cyclic_schedule.is_legal_period g tbl s ~period:6);
  (* the delayed edge v2 -> v0 (d=2) needs finish v2 = 6 <= 0 + 2p,
     so p >= 3 *)
  Alcotest.(check bool) "period 3" true
    (Sched.Cyclic_schedule.is_legal_period g tbl s ~period:3);
  Alcotest.(check bool) "period 2" false
    (Sched.Cyclic_schedule.is_legal_period g tbl s ~period:2)

let test_min_period () =
  let g = correlator () in
  let tbl = unit_table 3 in
  let s = serial_schedule () in
  (* dependence bound 3, but one FU instance carries 6 busy steps/period *)
  Alcotest.(check int) "resource-bound period" 6
    (Sched.Cyclic_schedule.min_period g tbl s);
  (* spreading over 2 FUs relaxes the resource bound to 3 *)
  let s2 = { s with Sched.Schedule.start = [| 0; 2; 4 |] } in
  ignore s2;
  let two_fu =
    { Sched.Schedule.start = [| 0; 2; 4 |]; assignment = [| 0; 0; 1 |] }
  in
  Alcotest.(check int) "mixed types relax the bound" 4
    (Sched.Cyclic_schedule.min_period g tbl two_fu)

let test_min_period_rejects_broken_schedule () =
  let g = correlator () in
  let tbl = unit_table 3 in
  let s = { Sched.Schedule.start = [| 0; 0; 4 |]; assignment = [| 0; 0; 0 |] } in
  Alcotest.check_raises "broken precedence"
    (Invalid_argument "Cyclic_schedule.min_period: schedule breaks precedence")
    (fun () -> ignore (Sched.Cyclic_schedule.min_period g tbl s))

let test_simulation_agrees_with_legality () =
  let g = correlator () in
  let tbl = unit_table 3 in
  let s = serial_schedule () in
  for period = 1 to 7 do
    let claimed = Sched.Cyclic_schedule.is_legal_period g tbl s ~period in
    let sim = Sched.Cyclic_schedule.simulate g tbl s ~period ~iterations:5 in
    Alcotest.(check bool)
      (Printf.sprintf "period %d: simulation is the oracle" period)
      claimed sim.Sched.Cyclic_schedule.ok
  done

let test_simulation_throughput_and_utilisation () =
  let g = correlator () in
  let tbl = unit_table 3 in
  let s = serial_schedule () in
  let sim = Sched.Cyclic_schedule.simulate g tbl s ~period:6 ~iterations:10 in
  Alcotest.(check bool) "legal run" true sim.Sched.Cyclic_schedule.ok;
  (* 10 iterations, the last finishing at 9*6 + 6 = 60 *)
  Alcotest.(check int) "finish" 60 sim.Sched.Cyclic_schedule.finish_time;
  Alcotest.(check (float 0.001)) "1 iteration per 6 steps" (10.0 /. 60.0)
    sim.Sched.Cyclic_schedule.throughput;
  (* one type-A FU busy 6 of every 6 steps -> fully utilised *)
  Alcotest.(check (float 0.001)) "type A utilisation" 1.0
    sim.Sched.Cyclic_schedule.utilisation.(0);
  Alcotest.(check (float 0.001)) "type B unused" 0.0
    sim.Sched.Cyclic_schedule.utilisation.(1)

let test_rotation_period_is_simulatable () =
  (* end-to-end: rotation's claimed period is legal for its own schedule
     on the retimed graph, confirmed by simulation *)
  let g = Workloads.Filters.lattice ~stages:4 in
  let rng = Workloads.Prng.create 3 in
  let tbl = Workloads.Tables.for_graph rng ~library:lib3 g in
  let a = Assign.Assignment.all_fastest tbl in
  match Sched.Rotation.run g tbl a ~config:[| 2; 2; 2 |] ~rotations:12 with
  | None -> Alcotest.fail "feasible"
  | Some res ->
      let sim =
        Sched.Cyclic_schedule.simulate res.Sched.Rotation.graph tbl
          res.Sched.Rotation.schedule ~period:res.Sched.Rotation.period
          ~iterations:4
      in
      Alcotest.(check bool) "rotated schedule simulates cleanly" true
        sim.Sched.Cyclic_schedule.ok

(* --- Registers --------------------------------------------------------- *)

let diamond_schedule () =
  (* diamond with unit times type A: v0@0 v1@1 v2@1 v3@2 would break
     (v1,v2 take 2 steps); use times 1 via a dedicated table *)
  let g = diamond () in
  let tbl = table lib2 (List.init 4 (fun _ -> ([ 1; 3 ], [ 2; 1 ]))) in
  let s = { Sched.Schedule.start = [| 0; 1; 1; 2 |]; assignment = [| 0; 0; 0; 0 |] } in
  (g, tbl, s)

let test_lifetimes_diamond () =
  let g, tbl, s = diamond_schedule () in
  let lts = Sched.Registers.lifetimes g tbl s in
  (* v0 lives 1..1? born at 1, last consumer (v1,v2) starts at 1 -> dead on
     arrival, dropped. v1,v2 born at 2, consumer v3 starts 2 -> dropped.
     v3 (no consumers) lives 3..3 -> schedule end 3 means death 3 = birth,
     dropped too. *)
  Alcotest.(check int) "tight schedule holds nothing" 0 (List.length lts);
  (* stretch v3's start: now v1/v2 must be held across steps 2..3 *)
  let s = { s with Sched.Schedule.start = [| 0; 1; 1; 4 |] } in
  let lts = Sched.Registers.lifetimes g tbl s in
  Alcotest.(check int) "v1 and v2 live" 2 (List.length lts);
  Alcotest.(check int) "two registers" 2 (Sched.Registers.max_live g tbl s)

let test_output_values_live_to_end () =
  let g = graph 2 [ (0, 1) ] in
  let tbl = table lib2 [ ([ 1; 1 ], [ 1; 1 ]); ([ 2; 2 ], [ 1; 1 ]) ] in
  let s = { Sched.Schedule.start = [| 0; 1 |]; assignment = [| 0; 0 |] } in
  let lts = Sched.Registers.lifetimes g tbl s in
  (* v1 is an output: lives from 3 to end (3) -> dropped; v0 consumed at 1,
     born 1 -> dropped *)
  Alcotest.(check int) "nothing held" 0 (List.length lts);
  let s = { s with Sched.Schedule.start = [| 0; 3 |] } in
  match Sched.Registers.lifetimes g tbl s with
  | [ lt ] ->
      Alcotest.(check int) "v0 held" 0 lt.Sched.Registers.node;
      Alcotest.(check int) "from its finish" 1 lt.Sched.Registers.birth;
      Alcotest.(check int) "to the consumer's start" 3 lt.Sched.Registers.death
  | l -> Alcotest.failf "expected one lifetime, got %d" (List.length l)

let test_delayed_values_cross_iterations () =
  (* v0 feeds v2 of the NEXT iteration: its value must survive to the
     iteration end even though its zero-delay consumer takes it early *)
  let g = graph_with_delays 3 [ (0, 1, 0); (1, 2, 0); (0, 2, 1) ] in
  let tbl = unit_table 3 in
  let s = serial_schedule () in
  let lts = Sched.Registers.lifetimes g tbl s in
  Alcotest.(check bool) "v0 live to the schedule end" true
    (List.exists
       (fun lt -> lt.Sched.Registers.node = 0 && lt.Sched.Registers.death = 6)
       lts)

let test_allocation_count_equals_max_live () =
  let rng = Workloads.Prng.create 67 in
  for trial = 1 to 25 do
    let n = 2 + Workloads.Prng.int rng 12 in
    let g = Workloads.Random_dfg.random_dag rng ~n ~extra_edges:3 in
    let tbl = Workloads.Tables.random_tradeoff rng ~library:lib3 ~num_nodes:n in
    let a = Assign.Assignment.all_fastest tbl in
    let deadline = Assign.Assignment.makespan g tbl a + Workloads.Prng.int rng 5 in
    match Sched.Min_resource.run g tbl a ~deadline with
    | None -> Alcotest.failf "trial %d: scheduling failed" trial
    | Some { Sched.Min_resource.schedule; _ } ->
        let allocation, count = Sched.Registers.allocate g tbl schedule in
        Alcotest.(check int)
          (Printf.sprintf "trial %d: left-edge optimal" trial)
          (Sched.Registers.max_live g tbl schedule)
          count;
        (* no two overlapping lifetimes share a register *)
        List.iteri
          (fun i (lt, r) ->
            List.iteri
              (fun j (lt', r') ->
                if i < j && r = r' then
                  let overlap =
                    lt.Sched.Registers.birth < lt'.Sched.Registers.death
                    && lt'.Sched.Registers.birth < lt.Sched.Registers.death
                  in
                  if overlap then
                    Alcotest.failf "trial %d: register conflict" trial)
              allocation)
          allocation
  done

let () =
  Alcotest.run "sched.cyclic_regs"
    [
      ( "cyclic schedule",
        [
          quick "legal periods" test_legal_period_basic;
          quick "min period" test_min_period;
          quick "broken schedule rejected" test_min_period_rejects_broken_schedule;
          quick "simulation = legality oracle" test_simulation_agrees_with_legality;
          quick "throughput and utilisation" test_simulation_throughput_and_utilisation;
          quick "rotation result simulates" test_rotation_period_is_simulatable;
        ] );
      ( "registers",
        [
          quick "diamond lifetimes" test_lifetimes_diamond;
          quick "outputs live to end" test_output_values_live_to_end;
          quick "delayed values" test_delayed_values_cross_iterations;
          quick "left-edge = max live" test_allocation_count_equals_max_live;
        ] );
    ]
