let () =
  (match Obs.Json.parse "\"\\uZZZZ\"" with
   | Ok _ -> print_endline "Ok"
   | Error e -> print_endline ("Error: " ^ e)
   | exception e -> print_endline ("ESCAPED: " ^ Printexc.to_string e));
  (match Obs.Json.parse "\"\\u12G4\"" with
   | Ok _ -> print_endline "Ok"
   | Error e -> print_endline ("Error: " ^ e)
   | exception e -> print_endline ("ESCAPED: " ^ Printexc.to_string e))
